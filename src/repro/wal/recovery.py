"""Restart recovery: analysis, redo, undo (ARIES-lite).

``RecoveryManager`` drives the three passes against a *target* — the
engine — through a narrow interface:

* ``target.table_for_file(file_id)`` → Table runtime or None
* ``target.heap_for_file(file_id)`` → HeapFile or None (fallback when the
  target exposes no table runtimes)
* ``target.redo_create_table / redo_drop_table`` (idempotent DDL redo)
* ``target.redo_create_procedure / redo_drop_procedure``
* ``target.redo_create_index / redo_drop_index``

Redo repeats *history* — loser transactions' changes are re-applied and
then rolled back by the undo pass, exactly as in ARIES.  Redo is
idempotent via the page-LSN test; undo is restartable via CLRs carrying
``undo_next_lsn``.

Secondary indexes are maintained *incrementally* during both passes:
a table runtime materializes its B-trees from the heap's on-disk state
the first time recovery touches the table, and every redone or undone
heap change also applies the matching index updates (the logical
equivalent of redoing/undoing index pages).  No wholesale post-recovery
index rebuild is needed — restart cost scales with the log tail, not
with total data volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.heap import RowId
from repro.wal.log import WriteAheadLog
from repro.wal.records import (
    AbortRecord,
    BeginRecord,
    CheckpointRecord,
    CLRRecord,
    CommitRecord,
    CreateIndexRecord,
    CreateProcedureRecord,
    CreateTableRecord,
    CreateViewRecord,
    DeleteRecord,
    DropIndexRecord,
    DropProcedureRecord,
    DropTableRecord,
    DropViewRecord,
    EndRecord,
    InsertRecord,
    LogRecord,
    UpdateRecord,
)


def compensate(rec: LogRecord) -> LogRecord | None:
    """Build the record describing the inverse of ``rec``.

    Shared by online rollback (abort) and the restart undo pass so the two
    code paths cannot diverge.
    """
    if isinstance(rec, InsertRecord):
        return DeleteRecord(txn_id=rec.txn_id, table_name=rec.table_name,
                            file_id=rec.file_id, page_no=rec.page_no,
                            slot=rec.slot, row=rec.row)
    if isinstance(rec, DeleteRecord):
        return InsertRecord(txn_id=rec.txn_id, table_name=rec.table_name,
                            file_id=rec.file_id, page_no=rec.page_no,
                            slot=rec.slot, row=rec.row)
    if isinstance(rec, UpdateRecord):
        return UpdateRecord(txn_id=rec.txn_id, table_name=rec.table_name,
                            file_id=rec.file_id, page_no=rec.page_no,
                            slot=rec.slot, old_row=rec.new_row,
                            new_row=rec.old_row)
    if isinstance(rec, CreateTableRecord):
        return DropTableRecord(txn_id=rec.txn_id, table=rec.table)
    if isinstance(rec, DropTableRecord):
        return CreateTableRecord(txn_id=rec.txn_id, table=rec.table)
    if isinstance(rec, CreateProcedureRecord):
        return DropProcedureRecord(txn_id=rec.txn_id, name=rec.name,
                                   param_names=rec.param_names,
                                   body_sql=rec.body_sql)
    if isinstance(rec, DropProcedureRecord):
        return CreateProcedureRecord(txn_id=rec.txn_id, name=rec.name,
                                     param_names=rec.param_names,
                                     body_sql=rec.body_sql)
    if isinstance(rec, CreateIndexRecord):
        return DropIndexRecord(txn_id=rec.txn_id, index=rec.index)
    if isinstance(rec, DropIndexRecord):
        return CreateIndexRecord(txn_id=rec.txn_id, index=rec.index)
    if isinstance(rec, CreateViewRecord):
        return DropViewRecord(txn_id=rec.txn_id, name=rec.name,
                              body_sql=rec.body_sql)
    if isinstance(rec, DropViewRecord):
        return CreateViewRecord(txn_id=rec.txn_id, name=rec.name,
                                body_sql=rec.body_sql)
    return None


def apply_compensation(action: LogRecord, target) -> None:
    """Apply a compensating action built by :func:`compensate`.

    DML compensations go through the table runtime when the target has
    one, so loser-undo keeps the secondary indexes in step with the heap.
    """
    if isinstance(action, (InsertRecord, DeleteRecord, UpdateRecord)):
        rid = RowId(action.file_id, action.page_no, action.slot)
        runtime = _runtime_for(target, action.file_id)
        if runtime is not None:
            if isinstance(action, InsertRecord):
                runtime.apply_insert_with_indexes(rid, action.row,
                                                  action.lsn)
            elif isinstance(action, DeleteRecord):
                runtime.apply_delete_with_indexes(rid, action.lsn)
            else:
                runtime.apply_update_with_indexes(rid, action.new_row,
                                                  action.lsn)
            return
        heap = target.heap_for_file(action.file_id)
        if heap is None:
            return
        if isinstance(action, InsertRecord):
            heap.apply_insert(rid, action.row, action.lsn)
        elif isinstance(action, DeleteRecord):
            heap.apply_delete(rid, action.lsn)
        else:
            heap.apply_update(rid, action.new_row, action.lsn)
    elif isinstance(action, DropTableRecord):
        target.redo_drop_table(action.table)
    elif isinstance(action, CreateTableRecord):
        target.redo_create_table(action.table)
    elif isinstance(action, DropProcedureRecord):
        target.redo_drop_procedure(action.name)
    elif isinstance(action, CreateProcedureRecord):
        target.redo_create_procedure(action.name, action.param_names,
                                     action.body_sql)
    elif isinstance(action, DropIndexRecord):
        target.redo_drop_index(action.index)
    elif isinstance(action, CreateIndexRecord):
        target.redo_create_index(action.index)
    elif isinstance(action, DropViewRecord):
        target.redo_drop_view(action.name)
    elif isinstance(action, CreateViewRecord):
        target.redo_create_view(action.name, action.body_sql)


def _runtime_for(target, file_id: int):
    """The index-maintaining table runtime for ``file_id``, if any."""
    table_for_file = getattr(target, "table_for_file", None)
    if table_for_file is None:
        return None
    return table_for_file(file_id)


@dataclass
class RecoveryReport:
    """What restart recovery did (used by tests and the server log)."""

    checkpoint_lsn: int = 0
    winners: set = field(default_factory=set)
    losers: set = field(default_factory=set)
    redo_applied: int = 0
    redo_skipped: int = 0
    undo_applied: int = 0


class RecoveryManager:
    """Runs the three recovery passes against an engine target."""

    def __init__(self, log: WriteAheadLog, target):
        self._log = log
        self._target = target
        #: table runtimes whose indexes redo/undo touched — their unique
        #: trees may hold transient duplicates while history is repeated,
        #: so they are re-validated once undo completes.
        self._touched_runtimes: dict[int, object] = {}

    def _charge_record(self, rec: LogRecord, applied: bool) -> None:
        """Charge the honest cost of processing one record at restart:
        sequential log read plus (when applied) the page operation."""
        meter = self._log.meter
        if meter is None:
            return
        from repro.sim.costs import SERVER_DISK

        seconds = meter.costs.log_write_seconds(rec.payload_bytes())
        if applied:
            seconds += meter.costs.cpu_per_tuple_insert
        meter.charge(SERVER_DISK, seconds, "restart recovery")

    def recover(self) -> RecoveryReport:
        tracer = self._tracer()
        if tracer is not None:
            with tracer.span("wal.recover", layer="wal") as root:
                report = self._recover(tracer)
                root.set_attr("redo_applied", report.redo_applied)
                root.set_attr("undo_applied", report.undo_applied)
                root.set_attr("losers", len(report.losers))
                return report
        return self._recover(None)

    def _tracer(self):
        meter = self._log.meter
        if meter is None or not meter.obs.tracer.enabled:
            return None
        return meter.obs.tracer

    def _recover(self, tracer) -> RecoveryReport:
        report = RecoveryReport()
        report.checkpoint_lsn = self._log.last_checkpoint_lsn()
        if tracer is not None:
            with tracer.span("wal.analysis", layer="wal"):
                last_lsn, committed, ended = self._analysis(
                    report.checkpoint_lsn)
        else:
            last_lsn, committed, ended = self._analysis(
                report.checkpoint_lsn)
        report.winners = set(committed)
        report.losers = set(last_lsn) - committed - ended
        if tracer is not None:
            with tracer.span("wal.redo", layer="wal"):
                self._redo(report)
            with tracer.span("wal.undo", layer="wal"):
                self._undo(report,
                           {t: last_lsn[t] for t in report.losers})
        else:
            self._redo(report)
            self._undo(report, {t: last_lsn[t] for t in report.losers})
        # Indexes were maintained incrementally through redo/undo (see
        # module docstring); no wholesale rebuild pass is needed.  But
        # repeating history tolerates transient unique-key duplicates
        # (apply-mode inserts do not enforce uniqueness), so check the
        # invariant is restored now that both passes are done.
        for runtime in self._touched_runtimes.values():
            runtime.validate_unique_indexes()
        self._log.force()
        return report

    # -- analysis ----------------------------------------------------------

    def _analysis(
        self, checkpoint_lsn: int,
    ) -> tuple[dict[int, int], set[int], set[int]]:
        """Return (txn -> last undoable lsn, committed txns, ended txns).

        Losers are the txns that appear in the first map but neither
        committed nor ended.  CLR LSNs also update the last-lsn map so that
        undo of a crash-during-rollback resumes from the right place.
        """
        last_lsn: dict[int, int] = {}
        committed: set[int] = set()
        ended: set[int] = set()
        if checkpoint_lsn:
            checkpoint = self._log.record(checkpoint_lsn)
            assert isinstance(checkpoint, CheckpointRecord)
            last_lsn.update(checkpoint.active_txns)
        start = checkpoint_lsn + 1 if checkpoint_lsn else 1
        for rec in self._log.records_from(start):
            if isinstance(rec, CheckpointRecord):
                continue
            if isinstance(rec, EndRecord):
                ended.add(rec.txn_id)
                continue
            if isinstance(rec, CommitRecord):
                committed.add(rec.txn_id)
                continue
            if rec.txn_id:
                last_lsn[rec.txn_id] = rec.lsn
        return last_lsn, committed, ended

    # -- redo ---------------------------------------------------------------

    def _redo(self, report: RecoveryReport) -> None:
        start = report.checkpoint_lsn + 1 if report.checkpoint_lsn else 1
        for rec in self._log.records_from(start):
            before = report.redo_applied
            self._redo_one(rec, report)
            self._charge_record(rec, applied=report.redo_applied > before)

    def _redo_one(self, rec: LogRecord, report: RecoveryReport) -> None:
        if isinstance(rec, CLRRecord):
            if rec.action is not None:
                action = rec.action
                action.lsn = rec.lsn  # page-LSN stamp comes from the CLR
                self._redo_one(action, report)
            return
        if isinstance(rec, (InsertRecord, DeleteRecord, UpdateRecord)):
            runtime = _runtime_for(self._target, rec.file_id)
            heap = (runtime.heap if runtime is not None
                    else self._target.heap_for_file(rec.file_id))
            if heap is None:
                report.redo_skipped += 1
                return
            if heap.page_lsn(rec.page_no) >= rec.lsn:
                # Page already carries this change — and the runtime's
                # indexes were built from that heap state, so they carry
                # it too.
                report.redo_skipped += 1
                return
            rid = RowId(rec.file_id, rec.page_no, rec.slot)
            if runtime is not None:
                self._touched_runtimes[rec.file_id] = runtime
                if isinstance(rec, InsertRecord):
                    runtime.apply_insert_with_indexes(rid, rec.row, rec.lsn)
                elif isinstance(rec, DeleteRecord):
                    runtime.apply_delete_with_indexes(rid, rec.lsn)
                else:
                    runtime.apply_update_with_indexes(rid, rec.new_row,
                                                      rec.lsn)
            elif isinstance(rec, InsertRecord):
                heap.apply_insert(rid, rec.row, rec.lsn)
            elif isinstance(rec, DeleteRecord):
                heap.apply_delete(rid, rec.lsn)
            else:
                heap.apply_update(rid, rec.new_row, rec.lsn)
            report.redo_applied += 1
            return
        if isinstance(rec, CreateTableRecord):
            self._target.redo_create_table(rec.table)
            report.redo_applied += 1
        elif isinstance(rec, DropTableRecord):
            self._target.redo_drop_table(rec.table)
            report.redo_applied += 1
        elif isinstance(rec, CreateProcedureRecord):
            self._target.redo_create_procedure(rec.name, rec.param_names,
                                               rec.body_sql)
            report.redo_applied += 1
        elif isinstance(rec, DropProcedureRecord):
            self._target.redo_drop_procedure(rec.name)
            report.redo_applied += 1
        elif isinstance(rec, CreateIndexRecord):
            self._target.redo_create_index(rec.index)
            report.redo_applied += 1
        elif isinstance(rec, DropIndexRecord):
            self._target.redo_drop_index(rec.index)
            report.redo_applied += 1
        elif isinstance(rec, CreateViewRecord):
            self._target.redo_create_view(rec.name, rec.body_sql)
            report.redo_applied += 1
        elif isinstance(rec, DropViewRecord):
            self._target.redo_drop_view(rec.name)
            report.redo_applied += 1

    # -- undo ----------------------------------------------------------------

    def _undo(self, report: RecoveryReport, losers: dict[int, int]) -> None:
        for txn_id in sorted(losers):
            self._undo_txn(txn_id, losers[txn_id], report)

    def _undo_txn(self, txn_id: int, last_lsn: int,
                  report: RecoveryReport) -> None:
        lsn = last_lsn
        while lsn:
            rec = self._log.record(lsn)
            if isinstance(rec, CLRRecord):
                lsn = rec.undo_next_lsn  # already-undone prefix is skipped
                continue
            if isinstance(rec, (BeginRecord, AbortRecord)):
                lsn = rec.prev_lsn
                continue
            compensation = compensate(rec)
            if compensation is not None:
                clr = CLRRecord(txn_id=txn_id, prev_lsn=0,
                                action=compensation,
                                undo_next_lsn=rec.prev_lsn)
                self._log.append(clr)
                compensation.lsn = clr.lsn
                if isinstance(compensation,
                              (InsertRecord, DeleteRecord, UpdateRecord)):
                    runtime = _runtime_for(self._target,
                                           compensation.file_id)
                    if runtime is not None:
                        self._touched_runtimes[compensation.file_id] = \
                            runtime
                apply_compensation(compensation, self._target)
                report.undo_applied += 1
            lsn = rec.prev_lsn
        self._log.append(EndRecord(txn_id=txn_id))

"""Write-ahead logging and restart recovery (ARIES-lite).

The engine follows the classic discipline:

* every change is logged *before* the page is touched (WAL rule),
* commit forces the log (durability),
* dirty pages may reach disk before commit (steal) and need not reach disk
  at commit (no-force),
* restart recovery runs analysis → redo (from the last checkpoint,
  page-LSN-guarded, so it is idempotent) → undo of loser transactions,
  writing compensation records.

This is the machinery the paper *leans on*: Phoenix materializes session
state as ordinary committed tables precisely so that ordinary database
recovery brings them back after a crash.
"""

from repro.wal.log import WriteAheadLog
from repro.wal.records import (
    AbortRecord,
    BeginRecord,
    CheckpointRecord,
    CLRRecord,
    CommitRecord,
    CreateIndexRecord,
    CreateProcedureRecord,
    CreateTableRecord,
    DeleteRecord,
    DropIndexRecord,
    DropProcedureRecord,
    DropTableRecord,
    EndRecord,
    InsertRecord,
    LogRecord,
    UpdateRecord,
)
from repro.wal.recovery import RecoveryManager, RecoveryReport

__all__ = [
    "WriteAheadLog",
    "LogRecord",
    "BeginRecord",
    "CommitRecord",
    "AbortRecord",
    "EndRecord",
    "InsertRecord",
    "DeleteRecord",
    "UpdateRecord",
    "CreateTableRecord",
    "DropTableRecord",
    "CreateProcedureRecord",
    "DropProcedureRecord",
    "CreateIndexRecord",
    "DropIndexRecord",
    "CheckpointRecord",
    "CLRRecord",
    "RecoveryManager",
    "RecoveryReport",
]

"""Log record types.

Records are physiological: data records name a page/slot (physical) but
carry whole row values (logical), which keeps redo idempotent via the
page-LSN test and makes undo trivial (apply the inverse row operation).

Every record carries ``txn_id`` and ``prev_lsn`` — the backward chain used
by abort and by the undo pass of restart recovery.  ``lsn`` is assigned by
the log at append time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.types import value_width_bytes


@dataclass
class LogRecord:
    """Base class; concrete records are the dataclasses below."""

    txn_id: int
    prev_lsn: int = 0
    lsn: int = 0  # assigned by WriteAheadLog.append

    def payload_bytes(self) -> int:
        """Estimated payload size, for log-write cost charging."""
        return 16

    @staticmethod
    def _row_bytes(row) -> int:
        if row is None:
            return 0
        return sum(map(value_width_bytes, row))


@dataclass
class BeginRecord(LogRecord):
    pass


@dataclass
class CommitRecord(LogRecord):
    pass


@dataclass
class AbortRecord(LogRecord):
    """Transaction decided to roll back; CLRs follow."""


@dataclass
class EndRecord(LogRecord):
    """Transaction fully finished (committed-and-forced or fully undone)."""


@dataclass
class InsertRecord(LogRecord):
    table_name: str = ""
    file_id: int = 0
    page_no: int = 0
    slot: int = 0
    row: tuple = ()

    def payload_bytes(self) -> int:
        return 24 + self._row_bytes(self.row)


@dataclass
class DeleteRecord(LogRecord):
    table_name: str = ""
    file_id: int = 0
    page_no: int = 0
    slot: int = 0
    row: tuple = ()  # the deleted row (needed for undo)

    def payload_bytes(self) -> int:
        return 24 + self._row_bytes(self.row)


@dataclass
class UpdateRecord(LogRecord):
    table_name: str = ""
    file_id: int = 0
    page_no: int = 0
    slot: int = 0
    old_row: tuple = ()
    new_row: tuple = ()

    def payload_bytes(self) -> int:
        return 24 + self._row_bytes(self.old_row) + self._row_bytes(self.new_row)


@dataclass
class CreateTableRecord(LogRecord):
    """DDL: table metadata snapshot sufficient to recreate the table."""

    table: dict = field(default_factory=dict)

    def payload_bytes(self) -> int:
        return 64 + 16 * len(self.table.get("columns", ()))


@dataclass
class DropTableRecord(LogRecord):
    """DDL: carries the dropped table's metadata so undo can recreate it.

    Note: row contents of a dropped-and-rolled-back table are restored
    because the drop only becomes physical at commit (the engine defers
    page deallocation until the dropping transaction commits).
    """

    table: dict = field(default_factory=dict)

    def payload_bytes(self) -> int:
        return 64


@dataclass
class CreateProcedureRecord(LogRecord):
    name: str = ""
    param_names: tuple = ()
    body_sql: str = ""

    def payload_bytes(self) -> int:
        return 32 + len(self.body_sql)


@dataclass
class DropProcedureRecord(LogRecord):
    name: str = ""
    param_names: tuple = ()
    body_sql: str = ""  # retained for undo

    def payload_bytes(self) -> int:
        return 32 + len(self.body_sql)


@dataclass
class CreateViewRecord(LogRecord):
    name: str = ""
    body_sql: str = ""

    def payload_bytes(self) -> int:
        return 32 + len(self.body_sql)


@dataclass
class DropViewRecord(LogRecord):
    name: str = ""
    body_sql: str = ""  # retained for undo

    def payload_bytes(self) -> int:
        return 32 + len(self.body_sql)


@dataclass
class CreateIndexRecord(LogRecord):
    index: dict = field(default_factory=dict)

    def payload_bytes(self) -> int:
        return 48


@dataclass
class DropIndexRecord(LogRecord):
    index: dict = field(default_factory=dict)

    def payload_bytes(self) -> int:
        return 48


@dataclass
class CheckpointRecord(LogRecord):
    """Sharp checkpoint: all dirty pages flushed, catalog snapshotted.

    ``active_txns`` maps txn_id -> last_lsn at checkpoint time so undo can
    find loser chains that started before the checkpoint.
    """

    active_txns: dict = field(default_factory=dict)
    catalog_blob: str = "catalog_snapshot"

    def payload_bytes(self) -> int:
        return 32 + 12 * len(self.active_txns)


@dataclass
class BeginCheckpointRecord(LogRecord):
    """Fuzzy checkpoint opened: nothing is flushed, nothing blocks.

    The matching :class:`EndCheckpointRecord` carries the tables; a
    ``BeginCheckpointRecord`` with no durable End is an in-progress
    checkpoint that crashed — recovery ignores it and falls back to the
    previous complete checkpoint.
    """

    def payload_bytes(self) -> int:
        return 16


@dataclass
class EndCheckpointRecord(LogRecord):
    """Fuzzy checkpoint completed: the ARIES checkpoint tables.

    ``begin_lsn`` names the matching Begin record.  ``dirty_pages`` maps
    ``(file_id, page_no) -> recLSN`` (buffer-pool dirty-page table at End
    time, *after* the background flush); ``active_txns`` maps
    ``txn_id -> last_lsn`` and ``active_first_lsns`` maps
    ``txn_id -> first_lsn`` so undo chains of transactions that straddle
    the checkpoint stay reachable and log truncation can keep them.
    """

    begin_lsn: int = 0
    dirty_pages: dict = field(default_factory=dict)
    active_txns: dict = field(default_factory=dict)
    active_first_lsns: dict = field(default_factory=dict)

    def payload_bytes(self) -> int:
        return (32 + 20 * len(self.dirty_pages)
                + 12 * len(self.active_txns)
                + 12 * len(self.active_first_lsns))


@dataclass
class CLRRecord(LogRecord):
    """Compensation record: redo-only description of one undone action.

    ``action`` is the compensating data/DDL record (e.g. the DeleteRecord
    that compensates an insert); ``undo_next_lsn`` is where undo resumes if
    the system crashes mid-rollback.
    """

    action: LogRecord | None = None
    undo_next_lsn: int = 0

    def payload_bytes(self) -> int:
        inner = self.action.payload_bytes() if self.action is not None else 0
        return 16 + inner

"""The system catalog: tables, indexes and stored procedures.

The catalog is pure metadata — runtime structures (heap handles, B-trees)
are owned by the engine.  It is made durable by *snapshotting*: every
checkpoint writes ``snapshot()`` to the disk as a blob, and DDL is also
logged in the WAL so that redo can roll the restored snapshot forward to
the crash point.

Name scoping: all object names are case-insensitive (stored lowercased).
Tables created in the ``phoenix`` schema (``phoenix.Txxx``) carry
``amplified=False`` so the cost model does not scale-compensate Phoenix's
own overhead tables (see DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import (
    CatalogError,
    ProcedureNotFoundError,
    TableExistsError,
    TableNotFoundError,
)
from repro.types import Column, SqlType


@dataclass(frozen=True)
class IndexInfo:
    """Metadata of one index (the B-tree itself is rebuilt at restart)."""

    name: str
    table_name: str
    column_names: tuple[str, ...]
    unique: bool = False


@dataclass(frozen=True)
class TableInfo:
    """Metadata of one table."""

    name: str
    table_id: int
    file_id: int
    columns: tuple[Column, ...]
    volatile: bool = False        # temp / never-logged, dies on crash
    amplified: bool = True        # base-table work gets scale compensation
    primary_key: tuple[str, ...] = ()

    def column_index(self, column_name: str) -> int:
        target = column_name.lower()
        for i, col in enumerate(self.columns):
            if col.name.lower() == target:
                return i
        raise CatalogError(
            f"table {self.name!r} has no column {column_name!r}")

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]


@dataclass(frozen=True)
class ProcedureInfo:
    """A stored procedure: parameter names and SQL body text."""

    name: str
    param_names: tuple[str, ...]
    body_sql: str


@dataclass(frozen=True)
class ViewInfo:
    """A view: a named SELECT expanded at plan time."""

    name: str
    body_sql: str


@dataclass
class Catalog:
    """All metadata, snapshot-able as plain data."""

    tables: dict[str, TableInfo] = field(default_factory=dict)
    indexes: dict[str, IndexInfo] = field(default_factory=dict)
    procedures: dict[str, ProcedureInfo] = field(default_factory=dict)
    views: dict[str, ViewInfo] = field(default_factory=dict)
    next_table_id: int = 1
    next_file_id: int = 1
    #: Per-object-name DDL version counters (plan-cache invalidation keys).
    versions: dict[str, int] = field(default_factory=dict)
    #: Client-visible schema version carried in the protocol.  Counts only
    #: application DDL: Phoenix's own result-set tables and load procedures
    #: (``phoenix``-prefixed) churn constantly and must not invalidate the
    #: client metadata cache.
    schema_version: int = 0
    #: Per-table *DML* version counters, bumped once per committed
    #: transaction that wrote the table (the shared result cache's
    #: invalidation keys).  Deliberately volatile — never snapshotted.
    #: When the result cache is enabled they are recomputed from the WAL
    #: at restart so post-recovery versions are exactly consistent with
    #: the recovered data; when it is off they are never touched at all.
    dml_versions: dict[str, int] = field(default_factory=dict)
    #: ANALYZE output per table (plain dicts — see repro.sql.stats).
    #: Snapshotted, so statistics survive restart and Phoenix recovery.
    table_stats: dict[str, dict] = field(default_factory=dict)
    #: Per-table statistics version counters, bumped by ANALYZE.  These
    #: are the plan cache's stale-statistics invalidation keys — kept
    #: separate from :attr:`versions` because a stats refresh is not DDL
    #: and must not perturb the client-visible ``schema_version``.
    stats_versions: dict[str, int] = field(default_factory=dict)

    # -- versioning ----------------------------------------------------------

    def bump_version(self, name: str) -> None:
        """Record a DDL change to the named object."""
        key = name.lower()
        self.versions[key] = self.versions.get(key, 0) + 1
        if not key.startswith("phoenix"):
            self.schema_version += 1

    def version_of(self, name: str) -> int:
        return self.versions.get(name.lower(), 0)

    def bump_dml_version(self, name: str) -> int:
        """Record a committed write to the named table; returns the new
        version."""
        key = name.lower()
        version = self.dml_versions.get(key, 0) + 1
        self.dml_versions[key] = version
        return version

    def dml_version_of(self, name: str) -> int:
        return self.dml_versions.get(name.lower(), 0)

    # -- table statistics ----------------------------------------------------

    def set_table_stats(self, name: str, stats: dict) -> None:
        """Store ANALYZE output for a table and bump its stats version."""
        key = name.lower()
        self.table_stats[key] = stats
        self.stats_versions[key] = self.stats_versions.get(key, 0) + 1

    def get_table_stats(self, name: str) -> dict | None:
        return self.table_stats.get(name.lower())

    def stats_version_of(self, name: str) -> int:
        return self.stats_versions.get(name.lower(), 0)

    # -- tables ---------------------------------------------------------------

    def create_table(self, name: str, columns: list[Column],
                     volatile: bool = False, amplified: bool = True,
                     primary_key: tuple[str, ...] = (),
                     table_id: int | None = None,
                     file_id: int | None = None) -> TableInfo:
        """Register a table; ids are allocated unless redo supplies them."""
        key = name.lower()
        if key in self.tables:
            raise TableExistsError(f"table {name!r} already exists")
        if key in self.views:
            raise TableExistsError(f"{name!r} is a view")
        if table_id is None:
            table_id = self.next_table_id
        if file_id is None:
            file_id = self.next_file_id
        self.next_table_id = max(self.next_table_id, table_id + 1)
        self.next_file_id = max(self.next_file_id, file_id + 1)
        info = TableInfo(name=key, table_id=table_id, file_id=file_id,
                         columns=tuple(columns), volatile=volatile,
                         amplified=amplified,
                         primary_key=tuple(c.lower() for c in primary_key))
        self.tables[key] = info
        self.bump_version(key)
        return info

    def drop_table(self, name: str) -> TableInfo:
        key = name.lower()
        info = self.tables.pop(key, None)
        if info is None:
            raise TableNotFoundError(f"table {name!r} does not exist")
        for index_name in [n for n, ix in self.indexes.items()
                           if ix.table_name == key]:
            del self.indexes[index_name]
        self.table_stats.pop(key, None)
        self.bump_version(key)
        return info

    def get_table(self, name: str) -> TableInfo:
        info = self.tables.get(name.lower())
        if info is None:
            raise TableNotFoundError(f"table {name!r} does not exist")
        return info

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    # -- indexes -----------------------------------------------------------

    def create_index(self, name: str, table_name: str,
                     column_names: list[str], unique: bool = False) -> IndexInfo:
        key = name.lower()
        if key in self.indexes:
            raise CatalogError(f"index {name!r} already exists")
        table = self.get_table(table_name)
        for col in column_names:
            table.column_index(col)  # validates existence
        info = IndexInfo(name=key, table_name=table.name,
                         column_names=tuple(c.lower() for c in column_names),
                         unique=unique)
        self.indexes[key] = info
        self.bump_version(table.name)
        return info

    def drop_index(self, name: str) -> IndexInfo:
        info = self.indexes.pop(name.lower(), None)
        if info is None:
            raise CatalogError(f"index {name!r} does not exist")
        self.bump_version(info.table_name)
        return info

    def indexes_on(self, table_name: str) -> list[IndexInfo]:
        key = table_name.lower()
        return [ix for ix in self.indexes.values() if ix.table_name == key]

    # -- procedures ----------------------------------------------------------

    def create_procedure(self, name: str, param_names: list[str],
                         body_sql: str) -> ProcedureInfo:
        key = name.lower()
        if key in self.procedures:
            raise CatalogError(f"procedure {name!r} already exists")
        info = ProcedureInfo(name=key, param_names=tuple(param_names),
                             body_sql=body_sql)
        self.procedures[key] = info
        self.bump_version(key)
        return info

    def drop_procedure(self, name: str) -> ProcedureInfo:
        info = self.procedures.pop(name.lower(), None)
        if info is None:
            raise ProcedureNotFoundError(f"procedure {name!r} does not exist")
        self.bump_version(info.name)
        return info

    def get_procedure(self, name: str) -> ProcedureInfo:
        info = self.procedures.get(name.lower())
        if info is None:
            raise ProcedureNotFoundError(f"procedure {name!r} does not exist")
        return info

    def has_procedure(self, name: str) -> bool:
        return name.lower() in self.procedures

    # -- views ----------------------------------------------------------------

    def create_view(self, name: str, body_sql: str) -> ViewInfo:
        key = name.lower()
        if key in self.views:
            raise CatalogError(f"view {name!r} already exists")
        if key in self.tables:
            raise CatalogError(f"{name!r} is a table")
        info = ViewInfo(name=key, body_sql=body_sql)
        self.views[key] = info
        self.bump_version(key)
        return info

    def drop_view(self, name: str) -> ViewInfo:
        info = self.views.pop(name.lower(), None)
        if info is None:
            raise CatalogError(f"view {name!r} does not exist")
        self.bump_version(info.name)
        return info

    def get_view(self, name: str) -> ViewInfo | None:
        return self.views.get(name.lower())

    # -- snapshot / restore ----------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data snapshot (durable tables/procs only) for the disk blob."""
        return {
            "tables": [
                {
                    "name": t.name,
                    "table_id": t.table_id,
                    "file_id": t.file_id,
                    "columns": [
                        (c.name, c.sql_type.value, c.length, c.nullable)
                        for c in t.columns
                    ],
                    "amplified": t.amplified,
                    "primary_key": list(t.primary_key),
                }
                for t in self.tables.values() if not t.volatile
            ],
            "indexes": [
                {
                    "name": ix.name,
                    "table_name": ix.table_name,
                    "column_names": list(ix.column_names),
                    "unique": ix.unique,
                }
                for ix in self.indexes.values()
                if not self.get_table(ix.table_name).volatile
            ],
            "procedures": [
                {
                    "name": p.name,
                    "param_names": list(p.param_names),
                    "body_sql": p.body_sql,
                }
                for p in self.procedures.values()
            ],
            "views": [
                {"name": v.name, "body_sql": v.body_sql}
                for v in self.views.values()
            ],
            "next_table_id": self.next_table_id,
            "next_file_id": self.next_file_id,
            "versions": dict(self.versions),
            "schema_version": self.schema_version,
            "table_stats": {
                name: stats for name, stats in self.table_stats.items()
                if name in self.tables and not self.tables[name].volatile
            },
            "stats_versions": dict(self.stats_versions),
        }

    @classmethod
    def restore(cls, snapshot: dict | None) -> "Catalog":
        """Rebuild a catalog from :meth:`snapshot` output (None → empty)."""
        catalog = cls()
        if not snapshot:
            return catalog
        for t in snapshot["tables"]:
            columns = [Column(name, SqlType(type_name), length, nullable)
                       for name, type_name, length, nullable in t["columns"]]
            catalog.create_table(
                t["name"], columns, volatile=False,
                amplified=t["amplified"],
                primary_key=tuple(t["primary_key"]),
                table_id=t["table_id"], file_id=t["file_id"])
        for ix in snapshot["indexes"]:
            catalog.create_index(ix["name"], ix["table_name"],
                                 ix["column_names"], ix["unique"])
        for p in snapshot["procedures"]:
            catalog.create_procedure(p["name"], p["param_names"], p["body_sql"])
        for v in snapshot.get("views", []):
            catalog.create_view(v["name"], v["body_sql"])
        catalog.next_table_id = snapshot["next_table_id"]
        catalog.next_file_id = snapshot["next_file_id"]
        # The create_* calls above bumped fresh counters; overwrite with the
        # persisted values so versions survive restart exactly.
        catalog.versions = dict(snapshot.get("versions", catalog.versions))
        catalog.schema_version = snapshot.get("schema_version",
                                              catalog.schema_version)
        catalog.table_stats = dict(snapshot.get("table_stats", {}))
        catalog.stats_versions = dict(snapshot.get("stats_versions", {}))
        return catalog

    def rename_table(self, old: str, new: str) -> TableInfo:
        """Rename a table (keeps ids); used by tests and utilities."""
        info = self.get_table(old)
        new_key = new.lower()
        if new_key in self.tables:
            raise TableExistsError(f"table {new!r} already exists")
        del self.tables[info.name]
        self.bump_version(old)
        info = replace(info, name=new_key)
        self.tables[new_key] = info
        self.bump_version(new_key)
        return info

"""An order-``t`` B-tree mapping keys to row ids.

Used for primary-key and secondary indexes (TPC-C is all point lookups and
short range scans).  Keys are tuples of SQL values compared
lexicographically; each key maps to one or more :class:`RowId` values
(unique indexes enforce a single rid per key).

The tree is a plain in-memory structure: it is *not* logged.  The heap
is the durable truth — a table runtime builds each tree from its heap
at attach time, and restart recovery then maintains the trees
*incrementally*, routing every redone or undone heap change through the
index-aware apply methods (see ``wal/recovery.py`` and DESIGN.md §8),
so no wholesale post-recovery rebuild is needed.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.errors import ConstraintError


class NullKey:
    """Sorts below every SQL value: the index-key stand-in for NULL.

    B-tree keys compare lexicographically, and ``None`` has no ordering
    against ints/strings — so stored keys replace NULL with this
    sentinel (see :func:`encode_key`).  Seeks never bind it: a
    comparison against NULL is *unknown* in SQL three-valued logic, so
    the executor short-circuits those to zero matches instead.
    """

    __slots__ = ()

    def __lt__(self, other):
        return not isinstance(other, NullKey)

    def __gt__(self, other):
        return False

    def __le__(self, other):
        return True

    def __ge__(self, other):
        return isinstance(other, NullKey)

    def __eq__(self, other):
        return isinstance(other, NullKey)

    def __hash__(self):
        return 0

    def __repr__(self):
        return "NULL"


NULL_KEY = NullKey()


def encode_key(values) -> tuple:
    """Index-key encoding of a column-value sequence (NULL -> sentinel)."""
    return tuple(NULL_KEY if v is None else v for v in values)


def decode_key_value(value):
    """Inverse of :func:`encode_key` for one key column."""
    return None if isinstance(value, NullKey) else value


class _Node:
    __slots__ = ("keys", "values", "children")

    def __init__(self):
        self.keys: list[tuple] = []
        self.values: list[list] = []     # parallel to keys; leaf payloads
        self.children: list["_Node"] = []  # empty for leaves

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTree:
    """B-tree with configurable minimum degree ``t`` (default 16)."""

    def __init__(self, unique: bool = False, t: int = 16):
        if t < 2:
            raise ValueError("minimum degree must be at least 2")
        self._t = t
        self.unique = unique
        self._root = _Node()
        self._size = 0  # number of (key, value) pairs

    def __len__(self) -> int:
        return self._size

    # -- search -------------------------------------------------------------

    def search(self, key: tuple) -> list:
        """All values stored under ``key`` (empty list if absent)."""
        node = self._root
        while True:
            i = self._lower_bound(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                return list(node.values[i])
            if node.is_leaf:
                return []
            node = node.children[i]

    def contains(self, key: tuple) -> bool:
        return bool(self.search(key))

    def range(self, lo: tuple | None = None, hi: tuple | None = None,
              lo_inclusive: bool = True, hi_inclusive: bool = True):
        """Yield ``(key, value)`` pairs with lo <= key <= hi, in key order."""
        yield from self._range_walk(self._root, lo, hi,
                                    lo_inclusive, hi_inclusive)

    def items(self):
        """Yield every ``(key, value)`` pair in key order."""
        yield from self.range()

    def min_key(self) -> tuple | None:
        node = self._root
        if not node.keys:
            return None
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    def max_key(self) -> tuple | None:
        node = self._root
        if not node.keys:
            return None
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1]

    # -- insert --------------------------------------------------------------

    def insert(self, key: tuple, value, enforce_unique: bool = True) -> None:
        """Insert ``value`` under ``key``.

        Raises :class:`~repro.errors.ConstraintError` if the index is
        unique and the key is already present.  Recovery passes
        ``enforce_unique=False``: repeating history can transiently
        re-create a key the tree already holds (the delete that resolves
        it replays later), so redo/undo appends instead of raising and
        uniqueness is re-validated once undo completes (see
        ``wal/recovery.py``).
        """
        existing = self._find_payload(self._root, key)
        if existing is not None:
            if self.unique and enforce_unique:
                raise ConstraintError(f"duplicate key {key!r} in unique index")
            existing.append(value)
            self._size += 1
            return
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _Node()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
        self._insert_nonfull(self._root, key, value)
        self._size += 1

    # -- delete --------------------------------------------------------------

    def delete(self, key: tuple, value=None) -> bool:
        """Remove ``value`` from ``key`` (or the whole key if value is None).

        Returns True if something was removed.
        """
        payload = self._find_payload(self._root, key)
        if payload is None:
            return False
        if value is not None:
            if value not in payload:
                return False
            payload.remove(value)
            self._size -= 1
            if payload:
                return True
        else:
            self._size -= len(payload)
        self._delete_key(self._root, key)
        if not self._root.keys and not self._root.is_leaf:
            self._root = self._root.children[0]
        return True

    # -- internals: search helpers ---------------------------------------------

    # ``bisect_left`` performs exactly the hand-written binary search this
    # used to be (same ``<`` probes, same insertion point), in C.
    _lower_bound = staticmethod(bisect_left)

    def _find_payload(self, node: _Node, key: tuple) -> list | None:
        while True:
            i = self._lower_bound(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                return node.values[i]
            if node.is_leaf:
                return None
            node = node.children[i]

    def _range_walk(self, node: _Node, lo, hi, lo_inc, hi_inc):
        def above_lo(key):
            if lo is None:
                return True
            return key >= lo if lo_inc else key > lo

        def below_hi(key):
            if hi is None:
                return True
            return key <= hi if hi_inc else key < hi

        if node.is_leaf:
            for key, payload in zip(node.keys, node.values):
                if above_lo(key) and below_hi(key):
                    for value in payload:
                        yield key, value
            return
        for i, key in enumerate(node.keys):
            if lo is None or key > lo or (lo_inc and key >= lo):
                yield from self._range_walk(node.children[i], lo, hi,
                                            lo_inc, hi_inc)
            if above_lo(key) and below_hi(key):
                for value in node.values[i]:
                    yield key, value
            if hi is not None and key > hi:
                return
        yield from self._range_walk(node.children[-1], lo, hi, lo_inc, hi_inc)

    # -- internals: insertion ---------------------------------------------------

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self._t
        child = parent.children[index]
        sibling = _Node()
        mid_key = child.keys[t - 1]
        mid_val = child.values[t - 1]
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        child.keys = child.keys[:t - 1]
        child.values = child.values[:t - 1]
        if not child.is_leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.keys.insert(index, mid_key)
        parent.values.insert(index, mid_val)
        parent.children.insert(index + 1, sibling)

    def _insert_nonfull(self, node: _Node, key: tuple, value) -> None:
        while True:
            i = self._lower_bound(node.keys, key)
            if node.is_leaf:
                node.keys.insert(i, key)
                node.values.insert(i, [value])
                return
            if len(node.children[i].keys) == 2 * self._t - 1:
                self._split_child(node, i)
                if key > node.keys[i]:
                    i += 1
                elif key == node.keys[i]:
                    # Key migrated up during the split; should not happen
                    # because presence was checked, but stay safe.
                    node.values[i].append(value)
                    return
            node = node.children[i]

    # -- internals: deletion --------------------------------------------------

    def _delete_key(self, node: _Node, key: tuple) -> None:
        t = self._t
        i = self._lower_bound(node.keys, key)
        if i < len(node.keys) and node.keys[i] == key:
            if node.is_leaf:
                node.keys.pop(i)
                node.values.pop(i)
                return
            left, right = node.children[i], node.children[i + 1]
            if len(left.keys) >= t:
                pred_key, pred_val = self._pop_max(left)
                node.keys[i], node.values[i] = pred_key, pred_val
            elif len(right.keys) >= t:
                succ_key, succ_val = self._pop_min(right)
                node.keys[i], node.values[i] = succ_key, succ_val
            else:
                self._merge_children(node, i)
                self._delete_key(left, key)
            return
        if node.is_leaf:
            return  # key absent
        child = node.children[i]
        if len(child.keys) < t:
            i = self._fill_child(node, i)
            child = node.children[i]
        self._delete_key(child, key)

    def _pop_max(self, node: _Node) -> tuple:
        while not node.is_leaf:
            if len(node.children[-1].keys) < self._t:
                i = self._fill_child(node, len(node.children) - 1)
                node = node.children[i]
            else:
                node = node.children[-1]
        return node.keys.pop(), node.values.pop()

    def _pop_min(self, node: _Node) -> tuple:
        while not node.is_leaf:
            if len(node.children[0].keys) < self._t:
                i = self._fill_child(node, 0)
                node = node.children[i]
            else:
                node = node.children[0]
        key = node.keys.pop(0)
        value = node.values.pop(0)
        return key, value

    def _fill_child(self, node: _Node, i: int) -> int:
        """Ensure child ``i`` has >= t keys; returns its (possibly new) index."""
        t = self._t
        if i > 0 and len(node.children[i - 1].keys) >= t:
            self._borrow_from_left(node, i)
            return i
        if i + 1 < len(node.children) and len(node.children[i + 1].keys) >= t:
            self._borrow_from_right(node, i)
            return i
        if i + 1 < len(node.children):
            self._merge_children(node, i)
            return i
        self._merge_children(node, i - 1)
        return i - 1

    @staticmethod
    def _borrow_from_left(node: _Node, i: int) -> None:
        child, left = node.children[i], node.children[i - 1]
        child.keys.insert(0, node.keys[i - 1])
        child.values.insert(0, node.values[i - 1])
        node.keys[i - 1] = left.keys.pop()
        node.values[i - 1] = left.values.pop()
        if not left.is_leaf:
            child.children.insert(0, left.children.pop())

    @staticmethod
    def _borrow_from_right(node: _Node, i: int) -> None:
        child, right = node.children[i], node.children[i + 1]
        child.keys.append(node.keys[i])
        child.values.append(node.values[i])
        node.keys[i] = right.keys.pop(0)
        node.values[i] = right.values.pop(0)
        if not right.is_leaf:
            child.children.append(right.children.pop(0))

    @staticmethod
    def _merge_children(node: _Node, i: int) -> None:
        child, right = node.children[i], node.children[i + 1]
        child.keys.append(node.keys.pop(i))
        child.values.append(node.values.pop(i))
        child.keys.extend(right.keys)
        child.values.extend(right.values)
        child.children.extend(right.children)
        node.children.pop(i + 1)

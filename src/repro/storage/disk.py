"""The simulated durable medium.

``SimulatedDisk`` is the only component whose contents survive a server
crash.  It stores page images keyed by ``(file_id, page_no)`` plus named
blobs (catalog snapshots; the WAL keeps its own durable tail).  All I/O
*timing* is charged by the buffer pool / WAL, not here; the disk itself
only counts operations so tests can assert physical behaviour.

Ownership contract: the disk stores the exact object it is given and
returns the exact object it stored.  The buffer pool — the only page
client — clones pages on both sides of the boundary
(:meth:`~repro.storage.page.Page.clone` is cheap because row tuples are
immutable), so a post-crash read can never observe in-memory mutation that
was not explicitly written back.

Crash semantics: :class:`~repro.server.server.DatabaseServer` discards
every volatile structure (buffer pool, sessions, temp tables) but keeps the
``SimulatedDisk`` instance — exactly like a machine whose power was cut.
"""

from __future__ import annotations

import copy


class SimulatedDisk:
    """Durable page and blob store."""

    def __init__(self):
        self._pages: dict[tuple[int, int], object] = {}
        self._blobs: dict[str, object] = {}
        self.page_reads = 0
        self.page_writes = 0

    # -- pages ---------------------------------------------------------------

    def write_page(self, file_id: int, page_no: int, image: object) -> None:
        """Durably store ``image`` (caller transfers ownership)."""
        self._pages[(file_id, page_no)] = image
        self.page_writes += 1

    def read_page(self, file_id: int, page_no: int) -> object:
        """Return the stored image (caller must clone before mutating)."""
        self.page_reads += 1
        return self._pages.get((file_id, page_no))

    def has_page(self, file_id: int, page_no: int) -> bool:
        return (file_id, page_no) in self._pages

    def drop_file(self, file_id: int) -> int:
        """Remove every page of ``file_id``; returns how many were dropped."""
        keys = [k for k in self._pages if k[0] == file_id]
        for key in keys:
            del self._pages[key]
        return len(keys)

    def file_page_numbers(self, file_id: int) -> list[int]:
        """Sorted page numbers currently stored for ``file_id``."""
        return sorted(p for (f, p) in self._pages if f == file_id)

    # -- blobs (catalog snapshots etc.) ---------------------------------------

    def write_blob(self, name: str, value: object) -> None:
        """Durably store a deep copy of ``value`` under ``name``."""
        self._blobs[name] = copy.deepcopy(value)

    def append_blob(self, name: str, items: list) -> None:
        """Append deep copies of ``items`` to a list-valued blob.

        Used by WAL truncation to archive the dropped log prefix without
        rewriting (and re-deep-copying) the whole archive each time.
        """
        existing = self._blobs.setdefault(name, [])
        if not isinstance(existing, list):
            raise TypeError(f"blob {name!r} is not appendable")
        existing.extend(copy.deepcopy(items))

    def read_blob(self, name: str, default=None):
        value = self._blobs.get(name, default)
        return copy.deepcopy(value)

    def has_blob(self, name: str) -> bool:
        return name in self._blobs

    def delete_blob(self, name: str) -> None:
        self._blobs.pop(name, None)

"""Slotted pages of rows.

A :class:`Page` holds up to ``capacity`` row tuples in slots.  Deleted
slots hold ``None`` and can be reused.  Each page carries the LSN of the
last logged change applied to it (``page_lsn``) so redo during restart
recovery is idempotent: a log record is only replayed onto a page whose
``page_lsn`` is older than the record's LSN (ARIES rule).
"""

from __future__ import annotations


class Page:
    """One slotted page: a fixed number of row slots plus a page LSN."""

    __slots__ = ("page_no", "capacity", "slots", "free_slots", "page_lsn")

    def __init__(self, page_no: int, capacity: int):
        if capacity < 1:
            raise ValueError("page capacity must be at least 1")
        self.page_no = page_no
        self.capacity = capacity
        self.slots: list[tuple | None] = []
        self.free_slots: list[int] = []  # reusable holes, LIFO
        self.page_lsn = 0

    # -- row operations --------------------------------------------------------

    @property
    def live_rows(self) -> int:
        return len(self.slots) - len(self.free_slots)

    def has_space(self) -> bool:
        return bool(self.free_slots) or len(self.slots) < self.capacity

    def insert(self, row: tuple) -> int:
        """Place ``row`` in a free slot; returns the slot number."""
        if self.free_slots:
            slot = self.free_slots.pop()
            self.slots[slot] = row
            return slot
        if len(self.slots) >= self.capacity:
            raise ValueError(f"page {self.page_no} is full")
        self.slots.append(row)
        return len(self.slots) - 1

    def insert_at(self, slot: int, row: tuple) -> None:
        """Place ``row`` in a specific slot (used by redo/undo)."""
        while len(self.slots) <= slot:
            self.slots.append(None)
            self.free_slots.append(len(self.slots) - 1)
        if self.slots[slot] is None and slot in self.free_slots:
            self.free_slots.remove(slot)
        self.slots[slot] = row

    def read(self, slot: int) -> tuple | None:
        if 0 <= slot < len(self.slots):
            return self.slots[slot]
        return None

    def delete(self, slot: int) -> tuple:
        """Remove and return the row in ``slot``."""
        row = self.read(slot)
        if row is None:
            raise ValueError(f"page {self.page_no} slot {slot} is empty")
        self.slots[slot] = None
        self.free_slots.append(slot)
        return row

    def update(self, slot: int, row: tuple) -> tuple:
        """Replace the row in ``slot``; returns the previous row."""
        old = self.read(slot)
        if old is None:
            raise ValueError(f"page {self.page_no} slot {slot} is empty")
        self.slots[slot] = row
        return old

    def rows(self):
        """Yield ``(slot, row)`` for every live row in slot order."""
        for slot, row in enumerate(self.slots):
            if row is not None:
                yield slot, row

    # -- copying -----------------------------------------------------------

    def clone(self) -> "Page":
        """Cheap copy: slot list is copied, row tuples are shared."""
        other = Page(self.page_no, self.capacity)
        other.slots = list(self.slots)
        other.free_slots = list(self.free_slots)
        other.page_lsn = self.page_lsn
        return other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Page(no={self.page_no}, live={self.live_rows}/"
                f"{self.capacity}, lsn={self.page_lsn})")

"""Volatile LRU buffer pool.

The pool caches :class:`~repro.storage.page.Page` objects between the
engine and the :class:`~repro.storage.disk.SimulatedDisk`.  It is the
component that makes crashes interesting: dirty pages live here and are
*lost* on crash, so restart recovery must redo committed work from the
write-ahead log (no-force policy).  Dirty pages may also be flushed before
their transaction commits when evicted (steal policy), which is why undo
exists.

The WAL protocol is enforced at the flush point: before a dirty page is
written to disk, the log is forced up to that page's ``page_lsn``.

Pages of *volatile* files (temp tables, never-logged Phoenix scratch space)
are registered via :meth:`register_volatile`; they are never flushed and
never evicted, and simply vanish on crash.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.sim.costs import SERVER_DISK
from repro.sim.meter import Meter
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page


class BufferPool:
    """LRU page cache with steal/no-force semantics."""

    def __init__(self, disk: SimulatedDisk, meter: Meter | None = None,
                 capacity_pages: int = 4096, wal=None):
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one frame")
        self._disk = disk
        self._meter = meter
        self._wal = wal
        self.capacity_pages = capacity_pages
        #: Durable frames only, in LRU order — eviction scans this directly.
        self._frames: OrderedDict[tuple[int, int], Page] = OrderedDict()
        #: Volatile frames (temp tables, Phoenix scratch): never flushed and
        #: never evicted, kept out of the LRU so eviction does not have to
        #: skip-scan past them.  They still occupy capacity.
        self._volatile_frames: dict[tuple[int, int], Page] = {}
        #: Dirty-page table: (file_id, page_no) -> recLSN, the LSN of the
        #: first record that dirtied the page since it was last clean
        #: (0 = unknown, conservatively "needs the log from the start").
        #: Fuzzy checkpoints log this table instead of flushing it.
        self._dirty: dict[tuple[int, int], int] = {}
        self._volatile_files: set[int] = set()
        self.hits = 0
        self.misses = 0

    def attach_wal(self, wal) -> None:
        """Late-bind the WAL (server wires storage and log together)."""
        self._wal = wal

    # -- volatility -------------------------------------------------------------

    def register_volatile(self, file_id: int) -> None:
        """Mark ``file_id`` as volatile: in-memory only, dies on crash."""
        self._volatile_files.add(file_id)
        for key in [k for k in self._frames if k[0] == file_id]:
            self._volatile_frames[key] = self._frames.pop(key)
            self._dirty.pop(key, None)

    def is_volatile(self, file_id: int) -> bool:
        return file_id in self._volatile_files

    # -- page access --------------------------------------------------------

    def get_page(self, file_id: int, page_no: int,
                 cost_factor: float = 1.0) -> Page | None:
        """Return the page, faulting it in from disk on a miss.

        Returns ``None`` if the page exists neither in the pool nor on
        disk.  ``cost_factor`` scales the charged I/O time (work
        amplification for base tables).
        """
        key = (file_id, page_no)
        if file_id in self._volatile_files:
            page = self._volatile_frames.get(key)
            if page is not None:
                self.hits += 1
                return page
            self.misses += 1
            return None
        page = self._frames.get(key)
        if page is not None:
            self.hits += 1
            self._frames.move_to_end(key)
            return page
        self.misses += 1
        image = self._disk.read_page(file_id, page_no)
        if image is None:
            return None
        assert isinstance(image, Page)
        page = image.clone()
        self._charge_io(self._read_cost(cost_factor))
        self._admit(key, page)
        return page

    def new_page(self, file_id: int, page_no: int, capacity: int) -> Page:
        """Allocate a fresh page in the pool (dirty, not yet on disk)."""
        key = (file_id, page_no)
        if key in self._frames or key in self._volatile_frames \
                or self._disk.has_page(file_id, page_no):
            raise ValueError(f"page {key} already exists")
        page = Page(page_no, capacity)
        self._admit(key, page)
        self.mark_dirty(file_id, page_no)
        return page

    def mark_dirty(self, file_id: int, page_no: int,
                   rec_lsn: int = 0) -> None:
        """Mark a resident page dirty, tracking its recLSN.

        ``rec_lsn`` is the LSN of the record responsible for this
        dirtying (0 = unknown).  The table keeps the *minimum* over all
        dirtyings since the page was last clean, with 0 as the
        conservative floor — an unknown recLSN pins redo (and blocks
        truncation) back to the start of the log, which is always safe.
        """
        key = (file_id, page_no)
        if file_id in self._volatile_files:
            if key not in self._volatile_frames:
                raise ValueError(f"page {key} is not resident")
            return
        if key not in self._frames:
            raise ValueError(f"page {key} is not resident")
        existing = self._dirty.get(key)
        if existing is None:
            self._dirty[key] = rec_lsn
        elif rec_lsn < existing:
            self._dirty[key] = rec_lsn

    def is_dirty(self, file_id: int, page_no: int) -> bool:
        return (file_id, page_no) in self._dirty

    # -- flushing ----------------------------------------------------------

    def flush_page(self, file_id: int, page_no: int,
                   cost_factor: float = 1.0) -> None:
        """Write one dirty page to disk (forcing the WAL first)."""
        key = (file_id, page_no)
        if key not in self._dirty:
            return
        page = self._frames[key]
        if self._wal is not None:
            self._wal.force(up_to_lsn=page.page_lsn, sync=False)
        self._disk.write_page(file_id, page_no, page.clone())
        self._charge_io(self._write_cost(cost_factor))
        self._dirty.pop(key, None)

    def flush_all(self, cost_factor: float = 1.0) -> int:
        """Flush every dirty page (sharp checkpoint); returns count."""
        keys = sorted(self._dirty)
        for file_id, page_no in keys:
            self.flush_page(file_id, page_no, cost_factor)
        return len(keys)

    def flush_dirtied_before(self, lsn: int,
                             cost_factor: float = 1.0) -> int:
        """Background flusher: flush pages whose recLSN precedes ``lsn``.

        The fuzzy checkpointer calls this with the *previous* checkpoint's
        Begin LSN, so every page that has stayed dirty for a whole
        checkpoint interval reaches disk and the dirty-page table's
        minimum recLSN keeps advancing — which is what lets the log
        truncate.  Pages dirtied after ``lsn`` (the hot set) stay dirty.
        """
        keys = sorted(k for k, rec in self._dirty.items() if rec < lsn)
        for file_id, page_no in keys:
            self.flush_page(file_id, page_no, cost_factor)
        return len(keys)

    def dirty_page_table(self) -> dict[tuple[int, int], int]:
        """Snapshot of the dirty-page table ((file, page) -> recLSN)."""
        return dict(self._dirty)

    def min_rec_lsn(self) -> int | None:
        """Smallest recLSN across dirty pages (None when nothing dirty)."""
        if not self._dirty:
            return None
        return min(self._dirty.values())

    # -- lifecycle -----------------------------------------------------------

    def drop_file(self, file_id: int) -> None:
        """Forget all cached pages of a dropped file."""
        for key in [k for k in self._frames if k[0] == file_id]:
            del self._frames[key]
            self._dirty.pop(key, None)
        for key in [k for k in self._volatile_frames if k[0] == file_id]:
            del self._volatile_frames[key]
        self._volatile_files.discard(file_id)

    def crash(self) -> None:
        """Lose everything volatile (called by the server on crash)."""
        self._frames.clear()
        self._volatile_frames.clear()
        self._dirty.clear()
        self._volatile_files.clear()

    @property
    def resident_pages(self) -> int:
        return len(self._frames) + len(self._volatile_frames)

    @property
    def dirty_pages(self) -> int:
        return len(self._dirty)

    # -- internals -----------------------------------------------------------

    def _admit(self, key: tuple[int, int], page: Page) -> None:
        # Volatile pages count toward capacity (they occupy real frames),
        # so admissions of either kind apply the same eviction pressure.
        while len(self._frames) + len(self._volatile_frames) \
                >= self.capacity_pages:
            if not self._evict_one():
                break  # everything pinned/volatile; allow overflow
        if key[0] in self._volatile_files:
            self._volatile_frames[key] = page
        else:
            self._frames[key] = page
            self._frames.move_to_end(key)

    def _evict_one(self) -> bool:
        """Evict the least-recently-used durable page (O(1): volatile
        frames live in their own dict and are never candidates)."""
        for key in self._frames:
            if key in self._dirty:
                self.flush_page(*key)
            del self._frames[key]
            return True
        return False

    def _charge_io(self, seconds: float) -> None:
        if self._meter is not None:
            self._meter.charge_batched(SERVER_DISK, seconds, "page io")
            self._meter.count("disk_io")

    def _read_cost(self, cost_factor: float) -> float:
        costs = self._meter.costs if self._meter else None
        return (costs.disk_page_read_seconds * cost_factor) if costs else 0.0

    def _write_cost(self, cost_factor: float) -> float:
        costs = self._meter.costs if self._meter else None
        return (costs.disk_page_write_seconds * cost_factor) if costs else 0.0

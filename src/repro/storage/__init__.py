"""Storage engine substrate.

A from-scratch page-based storage layer standing in for SQL Server 7.0's
storage engine:

* :class:`~repro.storage.disk.SimulatedDisk` — the durable medium; its
  contents survive :meth:`DatabaseServer.crash`.
* :class:`~repro.storage.page.Page` — a slotted page of rows.
* :class:`~repro.storage.heap.HeapFile` — unordered row storage over pages.
* :class:`~repro.storage.buffer_pool.BufferPool` — volatile LRU page cache;
  dirty pages are lost on crash and recovered from the write-ahead log.
* :class:`~repro.storage.btree.BTree` — ordered index for point and range
  lookups (rebuilt from the heap during restart recovery).
* :class:`~repro.storage.catalog.Catalog` — tables, indexes and stored
  procedures; snapshotted to disk at checkpoints.
"""

from repro.storage.btree import BTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.catalog import Catalog, IndexInfo, TableInfo
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile, RowId
from repro.storage.page import Page

__all__ = [
    "BTree",
    "BufferPool",
    "Catalog",
    "IndexInfo",
    "TableInfo",
    "SimulatedDisk",
    "HeapFile",
    "RowId",
    "Page",
]

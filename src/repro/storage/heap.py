"""Heap files: unordered row storage over slotted pages.

A :class:`HeapFile` owns the pages of one table (identified by
``file_id``) and goes through the buffer pool for every page touch, so all
I/O costs and crash semantics come from the pool.  Pages are numbered
``0..page_count-1``; row addresses are :class:`RowId` triples.

The heap does not write log records — that is the transaction manager's
job (it logs *before* asking the heap to change anything, then stamps the
page LSN through :meth:`apply_insert` / :meth:`apply_delete` /
:meth:`apply_update`, which are also the entry points redo and undo use).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.buffer_pool import BufferPool
from repro.storage.page import Page


@dataclass(frozen=True, order=True)
class RowId:
    """Physical row address: file, page, slot."""

    file_id: int
    page_no: int
    slot: int


class HeapFile:
    """Row storage for one table."""

    def __init__(self, file_id: int, rows_per_page: int,
                 buffer_pool: BufferPool, cost_factor: float = 1.0):
        if rows_per_page < 1:
            raise ValueError("rows_per_page must be at least 1")
        self.file_id = file_id
        self.rows_per_page = rows_per_page
        self._pool = buffer_pool
        self.cost_factor = cost_factor
        self.page_count = 0
        self._pages_with_space: set[int] = set()

    @classmethod
    def attach(cls, file_id: int, rows_per_page: int,
               buffer_pool: BufferPool, disk,
               cost_factor: float = 1.0) -> "HeapFile":
        """Re-open an existing heap after restart, discovering its pages."""
        heap = cls(file_id, rows_per_page, buffer_pool, cost_factor)
        page_nos = disk.file_page_numbers(file_id)
        heap.page_count = (max(page_nos) + 1) if page_nos else 0
        for page_no in page_nos:
            page = buffer_pool.get_page(file_id, page_no, cost_factor)
            if page is not None and page.has_space():
                heap._pages_with_space.add(page_no)
        return heap

    # -- normal operations (used via the transaction manager) -----------------

    def find_insert_target(self) -> RowId:
        """Choose the address a new row will be inserted at.

        The transaction manager needs the address *before* mutating so it
        can write the log record first (write-ahead rule).
        """
        page_no = self._page_with_space()
        page = self._page(page_no, create=True)
        if page.free_slots:
            slot = page.free_slots[-1]
        else:
            slot = len(page.slots)
        return RowId(self.file_id, page_no, slot)

    def apply_insert(self, rid: RowId, row: tuple, lsn: int = 0) -> None:
        """Insert ``row`` at ``rid`` and stamp the page LSN (redo-safe)."""
        page = self._page(rid.page_no, create=True)
        page.insert_at(rid.slot, row)
        self._stamp(page, rid.page_no, lsn)

    def apply_delete(self, rid: RowId, lsn: int = 0) -> tuple:
        page = self._require_page(rid.page_no)
        row = page.delete(rid.slot)
        self._stamp(page, rid.page_no, lsn)
        self._pages_with_space.add(rid.page_no)
        return row

    def apply_update(self, rid: RowId, row: tuple, lsn: int = 0) -> tuple:
        page = self._require_page(rid.page_no)
        old = page.update(rid.slot, row)
        self._stamp(page, rid.page_no, lsn)
        return old

    def read(self, rid: RowId) -> tuple | None:
        """Return the row at ``rid`` or ``None`` if the slot is empty."""
        if rid.file_id != self.file_id:
            raise ValueError("row id belongs to a different file")
        if rid.page_no >= self.page_count:
            return None
        page = self._pool.get_page(self.file_id, rid.page_no, self.cost_factor)
        if page is None:
            return None
        return page.read(rid.slot)

    def page_lsn(self, page_no: int) -> int:
        """Page LSN for redo decisions (0 for pages that do not exist yet)."""
        if page_no >= self.page_count:
            return 0
        page = self._pool.get_page(self.file_id, page_no, self.cost_factor)
        return page.page_lsn if page is not None else 0

    def scan(self):
        """Yield ``(RowId, row)`` for every live row, page order."""
        for block in self.scan_pages():
            yield from block

    def scan_pages(self):
        """Yield each page's live rows as one block of ``(RowId, row)``.

        The batch executor consumes pages as blocks so its batch
        boundaries coincide with page-fault boundaries — any disk charge
        the pool makes happens at exactly the same consumption point as
        under row-at-a-time iteration.  ``scan`` is this, flattened.
        """
        file_id = self.file_id
        for page_no in range(self.page_count):
            page = self._pool.get_page(file_id, page_no, self.cost_factor)
            if page is None:
                continue
            yield [(RowId(file_id, page_no, slot), row)
                   for slot, row in page.rows()]

    def count_rows(self) -> int:
        return sum(1 for _ in self.scan())

    # -- internals -----------------------------------------------------------

    def _page_with_space(self) -> int:
        for page_no in sorted(self._pages_with_space):
            page = self._page(page_no, create=False)
            if page is not None and page.has_space():
                return page_no
            self._pages_with_space.discard(page_no)
        return self.page_count  # allocate a fresh page

    def _page(self, page_no: int, create: bool) -> Page | None:
        if page_no < self.page_count:
            page = self._pool.get_page(self.file_id, page_no, self.cost_factor)
            if page is not None:
                return page
            if not create:
                return None
            # Page was allocated before a crash but never flushed; redo is
            # recreating it now.
            page = self._pool.new_page(self.file_id, page_no, self.rows_per_page)
            self._pages_with_space.add(page_no)
            return page
        if not create:
            return None
        page = self._pool.new_page(self.file_id, page_no, self.rows_per_page)
        self.page_count = page_no + 1
        self._pages_with_space.add(page_no)
        return page

    def _require_page(self, page_no: int) -> Page:
        page = self._page(page_no, create=False)
        if page is None:
            raise ValueError(
                f"file {self.file_id} page {page_no} does not exist")
        return page

    def _stamp(self, page: Page, page_no: int, lsn: int) -> None:
        if lsn:
            page.page_lsn = max(page.page_lsn, lsn)
        self._pool.mark_dirty(self.file_id, page_no, rec_lsn=lsn)
        if not page.has_space():
            self._pages_with_space.discard(page_no)

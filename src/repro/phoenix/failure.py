"""Failure detection and the ping/reconnect loop (§2.3).

Phoenix detects server failure by (i) intercepting errors raised by the
native driver and (ii) timing out application requests (the network layer
models the timeout).  Once a potential problem is detected it pings the
server on its private connection, periodically retrying; if the budget
runs out it gives up and the original error is exposed to the
application.

Crash-vs-blip: "there is no explicit test for this, so we test a proxy,
i.e. whether a special temporary table created for the database session
still exists" — temp tables die with their session.
"""

from __future__ import annotations

from repro.errors import (
    ConnectionLostError,
    ReproError,
    RequestTimeoutError,
    ServerCrashedError,
    ServerDownError,
)
from repro.odbc.driver import NativeDriver
from repro.odbc.handles import ConnectionHandle, StatementHandle
from repro.phoenix.config import PhoenixConfig
from repro.sim.costs import CLIENT_CPU
from repro.sim.meter import Meter

_TRANSPORT_ERRORS = (ServerDownError, ServerCrashedError,
                     ConnectionLostError, RequestTimeoutError)


def is_transport_failure(error: BaseException) -> bool:
    """Errors that may mean the server died (Phoenix intercepts these)."""
    return isinstance(error, _TRANSPORT_ERRORS)


class FailureDetector:
    """Pings and probes on behalf of the recovery machinery."""

    def __init__(self, driver: NativeDriver, meter: Meter,
                 config: PhoenixConfig):
        self._driver = driver
        self._meter = meter
        self._config = config
        self.reconnect_attempts = 0

    def await_server(self) -> bool:
        """Ping until the server answers or the budget is exhausted.

        Waiting is charged to the (virtual) clock — the application
        pauses, it does not fail.  Returns False on give-up.
        """
        budget = self._config.reconnect_budget_seconds
        waited = 0.0
        while True:
            self.reconnect_attempts += 1
            try:
                if self._driver.ping():
                    return True
            except ReproError:
                pass
            if waited >= budget:
                return False
            interval = min(self._config.retry_interval_seconds,
                           budget - waited)
            self._meter.charge(CLIENT_CPU, interval, "reconnect wait")
            waited += interval

    def session_survived(self, connection: ConnectionHandle,
                         probe_table: str) -> bool:
        """Probe the session's temp table: alive → it was only a blip."""
        if not connection.connected:
            return False
        scratch = StatementHandle(connection)
        try:
            self._driver.execute(scratch,
                                 f"SELECT count(*) FROM {probe_table}")
            self._driver.close_statement(scratch)
            return True
        except ReproError:
            return False

    def create_probe(self, connection: ConnectionHandle,
                     probe_table: str) -> None:
        """(Re)create the session-probe temp table after (re)connect."""
        scratch = StatementHandle(connection)
        self._driver.execute(scratch,
                             f"CREATE TABLE {probe_table} (alive INT)")

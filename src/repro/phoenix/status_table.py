"""The Phoenix status table: testable statement completion.

"Phoenix/ODBC wraps each insert and delete statement with a transaction,
and within that transaction it records the number of tuples affected by
the update in a Phoenix-managed table; this status table provides
testable state for determining whether a statement has successfully
completed."  (§3.2)

Because the recording INSERT commits atomically with the wrapped
statement, a post-crash lookup answers exactly-once questions: key
present → the statement's effects are durable (use the recorded count);
absent → the transaction aborted with the crash and the statement can be
resubmitted safely.
"""

from __future__ import annotations

from repro.errors import TableExistsError, TransactionError
from repro.odbc.driver import NativeDriver
from repro.odbc.handles import ConnectionHandle, StatementHandle
from repro.phoenix.config import PhoenixConfig


class StatusTable:
    """Client-side access to the server-resident status table."""

    def __init__(self, driver: NativeDriver, config: PhoenixConfig):
        self._driver = driver
        self._config = config

    @property
    def name(self) -> str:
        return self._config.status_table

    def ensure(self, connection: ConnectionHandle) -> None:
        """Create the status table if this is the first Phoenix client."""
        scratch = StatementHandle(connection)
        try:
            self._driver.execute(
                scratch,
                f"CREATE TABLE {self.name} "
                f"(op_key VARCHAR(64) NOT NULL, rows_affected INT, "
                f"PRIMARY KEY (op_key))")
        except TableExistsError:
            pass

    def completed(self, connection: ConnectionHandle,
                  op_key: str) -> int | None:
        """Recorded row count of ``op_key``, or None if never completed."""
        scratch = StatementHandle(connection)
        self._driver.execute(
            scratch,
            f"SELECT rows_affected FROM {self.name} "
            f"WHERE op_key = '{op_key}'")
        row = self._driver.fetch_one(scratch)
        self._driver.close_statement(scratch)
        return None if row is None else row[0]

    def record_sql(self, op_key: str, rows_affected: int) -> str:
        """The INSERT that marks ``op_key`` complete (run inside the
        wrapping transaction)."""
        return (f"INSERT INTO {self.name} (op_key, rows_affected) "
                f"VALUES ('{op_key}', {int(rows_affected)})")

    def reset_open_transaction(self, connection: ConnectionHandle) -> None:
        """Roll back any transaction left open on a survived session.

        Used when a *network blip* (not a crash) interrupted a wrapped
        statement: the server session may still hold the half-done
        transaction, which must be discarded before the retry.
        """
        scratch = StatementHandle(connection)
        try:
            self._driver.execute(scratch, "ROLLBACK")
        except TransactionError:
            pass  # no transaction was open — nothing to discard

"""One-pass request classification.

Phoenix "performs a one-pass parse to determine request type" before
passing the request to the native driver.  We classify from the first
token (plus a little lookahead) without building an AST, and charge the
paper's measured parse cost (0.00023 s).
"""

from __future__ import annotations

import enum

from repro.sim.costs import CLIENT_CPU
from repro.sim.meter import Meter


class RequestClass(enum.Enum):
    RESULT_QUERY = "result_query"    # SELECT: generates a result set
    UPDATE = "update"                # INSERT / UPDATE / DELETE
    DDL = "ddl"                      # CREATE / DROP
    EXEC = "exec"                    # stored procedure invocation
    BEGIN = "begin"
    COMMIT = "commit"
    ROLLBACK = "rollback"
    OTHER = "other"


_FIRST_WORD = {
    "SELECT": RequestClass.RESULT_QUERY,
    "INSERT": RequestClass.UPDATE,
    "UPDATE": RequestClass.UPDATE,
    "DELETE": RequestClass.UPDATE,
    "CREATE": RequestClass.DDL,
    "DROP": RequestClass.DDL,
    "EXEC": RequestClass.EXEC,
    "EXECUTE": RequestClass.EXEC,
    "BEGIN": RequestClass.BEGIN,
    "COMMIT": RequestClass.COMMIT,
    "ROLLBACK": RequestClass.ROLLBACK,
}


def classify_request(sql: str, meter: Meter | None = None) -> RequestClass:
    """Classify ``sql``; charges the one-pass parse cost if metered."""
    if meter is not None:
        meter.charge(CLIENT_CPU, meter.costs.client_parse_seconds,
                     "phoenix parse")
    word = _first_word(sql)
    return _FIRST_WORD.get(word, RequestClass.OTHER)


def inline_parameters(sql: str, params: dict) -> str:
    """Replace ``@name`` markers with rendered literal values.

    Phoenix re-embeds the application's SQL inside generated statements
    (the WHERE 0=1 probe, the loader procedure body), where parameter
    bindings would not travel — so prepared statements are inlined before
    entering the pipeline, the way classic drivers expanded parameters.
    """
    if not params:
        return sql
    import datetime

    def render(value) -> str:
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, (int, float)):
            return repr(value)
        if isinstance(value, datetime.date):
            return f"date '{value.isoformat()}'"
        escaped = str(value).replace("'", "''")
        return f"'{escaped}'"

    out = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":  # skip string literals (may contain @)
            out.append(ch)
            i += 1
            while i < n:
                out.append(sql[i])
                if sql[i] == "'":
                    if i + 1 < n and sql[i + 1] == "'":
                        out.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                i += 1
            continue
        if ch == "@":
            start = i + 1
            j = start
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            name = sql[start:j].lower()
            if name in params:
                out.append(render(params[name]))
                i = j
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _first_word(sql: str) -> str:
    i = 0
    n = len(sql)
    while i < n:
        if sql[i].isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            if end == -1:
                return ""
            i = end + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                return ""
            i = end + 2
            continue
        break
    start = i
    while i < n and (sql[i].isalpha() or sql[i] == "_"):
        i += 1
    return sql[start:i].upper()

"""Phoenix/ODBC: persistent database sessions.

The paper's contribution.  :class:`PhoenixDriverManager` exposes the same
surface as the native :class:`~repro.odbc.driver_manager.DriverManager`
but makes the application's database session survive server crashes:

* result sets are made persistent — either materialized into a server
  table (``CREATE TABLE`` + ``INSERT INTO ... <query>`` via a generated
  stored procedure, §2.1) or read entirely into a client-side cache
  (§4, the OLTP optimization);
* update statements are wrapped in a transaction that records their
  affected-row count in a Phoenix status table, making completion
  testable after a crash;
* connections are *virtual*: Phoenix reconnects, replays connection
  options and re-binds the virtual handle after a failure (§2.2);
* failures are detected by intercepting driver errors and by request
  timeouts, and recovery is automatic and idempotent (§2.3).
"""

from repro.phoenix.config import PhoenixConfig
from repro.phoenix.driver_manager import PhoenixDriverManager

__all__ = ["PhoenixConfig", "PhoenixDriverManager"]

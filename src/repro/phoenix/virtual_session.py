"""Virtual connections and per-statement Phoenix state.

The application holds handles to a *Phoenix/ODBC session*.  Underneath,
each virtual connection owns a real native connection (re-created after a
crash and re-bound transparently) plus everything Phoenix needs to
rebuild SQL state: the saved login, the replayable option list, and per-
statement bookkeeping (what was executed, how it was persisted, how far
delivery got).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.odbc.handles import ConnectionHandle, StatementHandle
from repro.types import Column


#: Connection options every ODBC session carries (driver defaults).
#: Phoenix re-installs each with one round trip during virtual-session
#: recovery — together with the reconnect these make up the paper's
#: constant ~0.37 s phase-1 cost.
DEFAULT_CONNECTION_OPTIONS: tuple[tuple[str, object], ...] = (
    ("autocommit", True),
    ("login_timeout", 15),
    ("query_timeout", 0),
    ("ansi_nulls", True),
    ("ansi_padding", True),
    ("arithabort", True),
    ("textsize", 2147483647),
    ("isolation_level", "read_committed"),
)


class StatementMode(enum.Enum):
    """How Phoenix made a statement's outcome recoverable."""

    NONE = "none"              # nothing executed yet
    PERSISTED = "persisted"    # result materialized in a server table
    CACHED = "cached"          # result fully in the client cache (§4)
    UPDATE = "update"          # status-table-wrapped modification
    PASSTHROUGH = "passthrough"  # not recoverable (inside an app txn)


@dataclass
class StatementState:
    """Phoenix bookkeeping for one application statement handle."""

    handle: StatementHandle
    mode: StatementMode = StatementMode.NONE
    original_sql: str = ""
    #: Result metadata as the application should see it (original column
    #: names, not the generated c1..cN of the materialized table).
    columns: list[Column] = field(default_factory=list)
    #: Name of the materialized result table (PERSISTED mode).
    table_name: str = ""
    #: Rows already delivered to the application.
    position: int = 0
    #: The full result (CACHED mode) and the delivery cursor into it.
    cache_rows: list[tuple] = field(default_factory=list)
    cache_position: int = 0
    #: Status-table key of the wrapped update (UPDATE mode).
    op_key: str = ""
    rowcount: int = -1
    finished: bool = False
    #: Total rows in the persisted result (filled lazily by scrolling).
    result_size: int = -1

    def reset(self) -> None:
        """Forget the previous execution (new exec on the same handle)."""
        self.mode = StatementMode.NONE
        self.original_sql = ""
        self.columns = []
        self.table_name = ""
        self.position = 0
        self.cache_rows = []
        self.cache_position = 0
        self.op_key = ""
        self.rowcount = -1
        self.finished = False
        self.result_size = -1


@dataclass
class VirtualConnection:
    """The application-facing connection and its replayable state."""

    app_handle: ConnectionHandle          # handle the application holds
    login: str = ""
    #: Options in the order the application set them — replayed one
    #: round-trip each during virtual-session recovery.
    option_log: list[tuple[str, object]] = field(default_factory=list)
    #: Statement states keyed by the app's statement handle id.
    statements: dict[int, StatementState] = field(default_factory=dict)
    #: Application transaction state (BEGIN seen, not yet ended).
    in_app_txn: bool = False
    #: Name of the session-probe temp table (crash-vs-blip detection).
    probe_table: str = "#phoenix_probe"
    connected: bool = False
    #: Shareable results produced inside the current application
    #: transaction — held session-private (as ``(sql, columns, rows,
    #: stamps)`` tuples) until COMMIT promotes them into the shared
    #: result cache; ROLLBACK (or a crash-induced abort) discards them.
    staged_results: list = field(default_factory=list)
    #: Tables the current application transaction has written, per the
    #: server's piggyback — the shared cache is bypassed for statements
    #: reading any of them (read-your-writes).
    dirty_tables: set = field(default_factory=set)

    def statement_state(self, handle: StatementHandle) -> StatementState:
        state = self.statements.get(handle.handle_id)
        if state is None:
            state = StatementState(handle=handle)
            self.statements[handle.handle_id] = state
        return state

    def open_result_states(self) -> list[StatementState]:
        """Statements whose delivery is in progress (need SQL-state
        recovery)."""
        return [s for s in self.statements.values()
                if s.mode in (StatementMode.PERSISTED, StatementMode.CACHED)
                and not s.finished]

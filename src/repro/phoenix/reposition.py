"""Repositioning within a recovered result set (§3.4).

After reopening the materialized result table, Phoenix must advance to
the tuple where delivery was interrupted.  Two strategies, matching the
paper's Figures 3 and 4:

* ``client`` — sequence through the result from the client, fetching and
  discarding rows (each discarded row pays the full per-fetch cost; the
  upper bound the paper measured in Fig. 3);
* ``server`` — the repositioning stored procedure: "advances to a
  specified tuple in a table ... without passing tuples to the client",
  modeled by the :class:`~repro.server.protocol.AdvanceRequest`, the
  dramatic ~10x improvement of Fig. 4.
"""

from __future__ import annotations

from repro.odbc.driver import NativeDriver
from repro.odbc.handles import StatementHandle


def reposition_client_side(driver: NativeDriver,
                           statement: StatementHandle,
                           position: int) -> int:
    """Fetch-and-discard ``position`` rows through the client."""
    discarded = 0
    while discarded < position:
        row = driver.fetch_one(statement)
        if row is None:
            break
        discarded += 1
    return discarded


def reposition_server_side(driver: NativeDriver,
                           statement: StatementHandle,
                           position: int) -> int:
    """Skip ``position`` rows on the server (stored-procedure advance)."""
    if position <= 0:
        return 0
    return driver.advance(statement, position)


def reposition(driver: NativeDriver, statement: StatementHandle,
               position: int, mode: str) -> int:
    result = statement.result
    if (result is not None and result.prefetch
            and result.prefetch[0].crash_epoch != driver.server.crashes):
        # Defensive: in-flight batches from a server incarnation that
        # has since crashed died with it — recovery normally replaces
        # the whole ResultState on reopen, but if a stale handle reaches
        # us, drop them before repositioning.  (Live-epoch batches are
        # kept: their rows are already off the server's stream, and
        # ``driver.advance``/``fetch_one`` skip *through* them, so
        # discarding those would overshoot the target position.)
        driver.discard_prefetch(result)
    if mode == "server":
        return reposition_server_side(driver, statement, position)
    return reposition_client_side(driver, statement, position)

"""The §4 OLTP optimization: client-side result caching.

For simple queries with small results, creating a persistent server
table dominates cost.  Instead, Phoenix executes the original statement
and reads the *entire* result into a client cache with block-cursor
reads.  Only when the full result is cached does Phoenix begin delivery
— from that moment a server crash cannot affect the application's
ability to consume the result ("in fact, the client is isolated from the
server until it services the next request").

If the result does not fit the configured cache, Phoenix falls back to
server-side persistence (the cache is sized "large enough to hold small
result sets").  If the server dies before the cache is complete, the
caller's recovery loop simply re-executes the query.
"""

from __future__ import annotations

from repro.odbc.driver import NativeDriver
from repro.odbc.handles import ConnectionHandle, StatementHandle
from repro.phoenix.config import PhoenixConfig
from repro.phoenix.virtual_session import StatementMode, StatementState


class CacheOutcome:
    CACHED = "cached"
    OVERFLOW = "overflow"
    NOT_A_RESULT = "not_a_result"


class ClientCache:
    """Runs the cache-first execution path."""

    def __init__(self, driver: NativeDriver, config: PhoenixConfig):
        self._driver = driver
        self._config = config

    @property
    def enabled(self) -> bool:
        return self._config.client_cache_rows > 0

    def try_cache(self, state: StatementState, sql: str) -> str:
        """Execute ``sql`` and try to fully cache its result.

        Returns a :class:`CacheOutcome` value.  On OVERFLOW the
        statement's server-side cursor has been closed and the caller
        should fall back to server-side persistence (closing also
        discards any fetch-ahead batches still in flight — they were
        never delivered, so nothing is lost).  With
        ``CostModel.fetch_ahead_depth`` set, the block-cursor drain
        below overlaps each wire batch with caching the previous one.
        """
        capacity = self._config.client_cache_rows
        result = self._driver.execute(state.handle, sql)
        if not result.columns and result.statement_id == 0 \
                and not result.buffered:
            # Not a row-returning statement after all.
            state.rowcount = result.rowcount
            return CacheOutcome.NOT_A_RESULT
        rows: list[tuple] = []
        while True:
            batch = self._driver.fetch_block(state.handle,
                                             capacity - len(rows) + 1)
            if not batch:
                break
            rows.extend(batch)
            if len(rows) > capacity:
                self._driver.close_statement(state.handle)
                return CacheOutcome.OVERFLOW
        # The entire result is client-resident: it is now crash-proof.
        state.mode = StatementMode.CACHED
        state.original_sql = sql
        state.columns = list(result.columns)
        state.cache_rows = rows
        state.cache_position = 0
        state.finished = False
        self._driver.close_statement(state.handle)
        return CacheOutcome.CACHED

    def next_row(self, state: StatementState):
        """Deliver the next cached row (None at end-of-result)."""
        if state.cache_position >= len(state.cache_rows):
            state.finished = True
            return None
        row = state.cache_rows[state.cache_position]
        state.cache_position += 1
        state.position += 1
        return row

"""The Phoenix-enhanced driver manager.

Exposes exactly the native :class:`DriverManager` surface (the
application cannot tell the difference) while wrapping every call point:

* ``exec_direct`` classifies the request (one-pass parse) and routes it
  through result persistence, the client cache, or status-table-wrapped
  execution;
* every driver interaction runs inside a recovery loop that intercepts
  transport errors, pings/reconnects, distinguishes crash from blip via
  the session-probe temp table, runs two-phase session recovery, and
  transparently retries the interrupted operation;
* ``fetch``/``fetch_block`` deliver rows from the persisted table or the
  client cache, tracking the delivery position used for repositioning;
* an application transaction interrupted by a crash surfaces as a
  transaction abort (SQLSTATE 40001) after the session has been rebuilt
  — "transaction failure is considered a normal event that most
  applications already handle."
"""

from __future__ import annotations

import itertools
import logging

from repro.errors import (
    DeadlockError,
    EngineError,
    RecoveryFailedError,
    ReproError,
)
from repro.odbc.constants import SQL_NO_DATA, SQL_SUCCESS
from repro.odbc.driver import NativeDriver
from repro.odbc.driver_manager import DriverManager
from repro.odbc.handles import (
    ConnectionHandle,
    EnvironmentHandle,
    StatementHandle,
)
from repro.phoenix.client_cache import CacheOutcome, ClientCache
from repro.phoenix.config import PhoenixConfig
from repro.phoenix.failure import FailureDetector, is_transport_failure
from repro.phoenix.parse import RequestClass, classify_request
from repro.phoenix.persistence import ResultPersistor
from repro.phoenix.recovery import SessionRecovery
from repro.phoenix.result_cache import SharedResultCache
from repro.phoenix.status_table import StatusTable
from repro.phoenix.virtual_session import (
    StatementMode,
    StatementState,
    VirtualConnection,
)
from repro.sim.costs import CLIENT_CPU


logger = logging.getLogger(__name__)


class PhoenixDriverManager(DriverManager):
    """Drop-in replacement for the native driver manager (§2)."""

    def __init__(self, driver: NativeDriver,
                 config: PhoenixConfig | None = None):
        super().__init__(driver)
        self.config = config if config is not None else PhoenixConfig()
        self.config.validate()
        self.meter = driver.meter
        self._vconns: dict[int, VirtualConnection] = {}
        self._status = StatusTable(driver, self.config)
        self._persistor = ResultPersistor(driver, self.meter, self.config,
                                          self._status)
        self._detector = FailureDetector(driver, self.meter, self.config)
        self._recovery = SessionRecovery(driver, self.meter, self.config,
                                         self._persistor, self._detector)
        self._cache = ClientCache(driver, self.config)
        self._private_env = EnvironmentHandle()
        self._private: ConnectionHandle | None = None
        # Incarnation nonce: makes op keys unique across driver-manager
        # incarnations so a restarted client never collides with keys a
        # previous incarnation persisted in the status table.  The counter
        # is scoped to the meter — i.e. to one simulated world — NOT to
        # the process: op keys are embedded in persisted SQL text whose
        # byte widths are charged, so a process-global counter made
        # virtual time depend on how many worlds ran earlier in the same
        # process (the nonce gaining a digit widened every op key).
        counter = getattr(self.meter, "_phoenix_nonce_counter", None)
        if counter is None:
            counter = itertools.count(1)
            self.meter._phoenix_nonce_counter = counter
        self._nonce = next(counter)
        self._op_seq = 0
        # The transaction-consistent shared result cache is world-scoped
        # (one per meter): every driver manager — hence every virtual
        # session — in the same simulated world shares it.  None while
        # the knob is off, so the seed path never even probes.
        self._shared_cache = (SharedResultCache.shared(self.meter)
                              if self.meter.costs.result_cache_entries > 0
                              else None)
        #: Observable counters for the experiments.
        self.stats = {"persisted_results": 0, "cached_results": 0,
                      "cache_overflows": 0, "wrapped_updates": 0,
                      "recoveries": 0, "blips": 0,
                      "shared_cache_hits": 0, "shared_cache_staged": 0}

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    def connect(self, connection: ConnectionHandle, login: str = "app",
                options: dict | None = None) -> int:
        def do():
            self.driver.connect(connection, login, options)
            vconn = VirtualConnection(app_handle=connection, login=login)
            from repro.phoenix.virtual_session import (
                DEFAULT_CONNECTION_OPTIONS,
            )

            vconn.option_log.extend(DEFAULT_CONNECTION_OPTIONS)
            for name, value in (options or {}).items():
                vconn.option_log.append((name, value))
            self._detector.create_probe(connection, vconn.probe_table)
            self._vconns[connection.handle_id] = vconn
            vconn.connected = True
            self._private_connection()  # also ensures the status table

        rc, _ = self._guard(connection, do)
        return rc

    def disconnect(self, connection: ConnectionHandle) -> int:
        vconn = self._vconns.pop(connection.handle_id, None)
        if vconn is not None:
            for state in vconn.statements.values():
                self._drop_quietly(state.table_name)
        rc, _ = self._guard(connection,
                            lambda: self.driver.disconnect(connection))
        return rc

    def set_connect_option(self, connection: ConnectionHandle, name: str,
                           value) -> int:
        vconn = self._require_vconn(connection)
        rc, _ = self._guard(connection, lambda: self._with_recovery(
            vconn,
            lambda: self.driver.set_connection_option(connection, name,
                                                      value)))
        if rc == SQL_SUCCESS:
            vconn.option_log.append((name, value))
        return rc

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------

    def exec_direct(self, statement: StatementHandle, sql: str,
                    params: dict | None = None) -> int:
        obs = self.meter.obs
        if obs.enabled:
            with obs.tracer.span("phoenix.exec_direct", layer="phoenix"):
                return self._exec_direct(statement, sql, params)
        return self._exec_direct(statement, sql, params)

    def _exec_direct(self, statement: StatementHandle, sql: str,
                     params: dict | None = None) -> int:
        vconn = self._require_vconn(statement.connection)
        if params:
            # Phoenix re-embeds the SQL text in generated statements, so
            # parameters are inlined as literals up front.
            from repro.phoenix.parse import inline_parameters

            sql = inline_parameters(sql, params)
            params = None
        request_class = classify_request(sql, self.meter)
        state = vconn.statement_state(statement)
        old_table = state.table_name
        state.reset()
        statement.last_sql = sql
        rc, _ = self._guard(statement, lambda: self._dispatch(
            vconn, state, request_class, sql, params, old_table))
        return rc

    def _dispatch(self, vconn: VirtualConnection, state: StatementState,
                  request_class: RequestClass, sql: str,
                  params: dict | None, old_table: str) -> None:
        self._drop_quietly(old_table, vconn)
        if request_class is RequestClass.BEGIN:
            self._with_recovery(vconn, lambda: self.driver.execute(
                state.handle, sql, params))
            vconn.in_app_txn = True
            vconn.staged_results.clear()
            vconn.dirty_tables.clear()
            state.mode = StatementMode.PASSTHROUGH
            return
        if request_class is RequestClass.COMMIT:
            self._with_recovery(vconn, lambda: self.driver.execute(
                state.handle, sql, params))
            vconn.in_app_txn = False
            self._promote_staged(vconn)
            state.mode = StatementMode.PASSTHROUGH
            return
        if request_class is RequestClass.ROLLBACK:
            self._with_recovery(vconn, lambda: self.driver.execute(
                state.handle, sql, params))
            vconn.in_app_txn = False
            self._discard_staged(vconn)
            state.mode = StatementMode.PASSTHROUGH
            return
        if request_class is RequestClass.RESULT_QUERY:
            self._execute_query(vconn, state, sql, params)
        elif request_class in (RequestClass.UPDATE, RequestClass.DDL):
            self._execute_update(vconn, state, sql, params)
        else:
            # EXEC / OTHER: pass through; recovery resubmits.
            result = self._with_recovery(vconn, lambda: self.driver.execute(
                state.handle, sql, params))
            state.mode = StatementMode.PASSTHROUGH
            state.rowcount = result.rowcount
            state.columns = list(result.columns)
        if vconn.in_app_txn and self._shared_cache is not None:
            # The server piggybacks the transaction's write set on every
            # response; remember it so promote-time restamping knows
            # which staged reads saw the transaction's own writes.
            vconn.dirty_tables.update(self.driver.last_dirty_tables)

    # -- result-generating statements (§2.1 / §4) ------------------------------

    def _execute_query(self, vconn: VirtualConnection,
                       state: StatementState, sql: str,
                       params: dict | None) -> None:
        if self._serve_from_shared_cache(vconn, state, sql):
            return
        if self._cache.enabled:
            outcome = self._with_recovery(
                vconn, lambda: self._cache.try_cache(state, sql))
            if outcome == CacheOutcome.CACHED:
                self.stats["cached_results"] += 1
                self._note_shared_cacheable(vconn, state, sql)
                return
            if outcome == CacheOutcome.NOT_A_RESULT:
                return
            self.stats["cache_overflows"] += 1
        op_key = self._next_op_key()
        self._with_recovery(vconn, lambda: self._persistor.persist(
            vconn.app_handle, self._private_connection(), state, sql,
            op_key, in_app_txn=vconn.in_app_txn))
        self.stats["persisted_results"] += 1

    # -- shared result cache (transaction-consistent, all sessions) ----------

    def _serve_from_shared_cache(self, vconn: VirtualConnection,
                                 state: StatementState, sql: str) -> bool:
        """Try to answer a result query from the shared cache.

        A hit costs zero protocol requests: the rows are delivered from
        client memory through the same CACHED paths as the §4 per-
        statement cache, so delivery never consults any server-side
        position.  Statements inside an application transaction bypass
        the cache entirely — a lock-free hit would break two-phase-
        locking repeatable reads, and read-your-writes a fortiori.
        """
        cache = self._shared_cache
        if cache is None or vconn.in_app_txn:
            return False
        epoch = self.driver.server.crashes
        if cache.needs_revalidation(epoch):
            # One probe round trip revalidates the whole cache after a
            # reconnect: entries the recomputed server vector confirms
            # survive the crash (the paper's crash-proof client cache at
            # driver-manager scale); under asynchronous commit equal
            # counts may hide lost commits, so everything is discarded.
            versions = self._with_recovery(
                vconn,
                lambda: self.driver.fetch_table_versions(vconn.app_handle))
            cache.revalidate(
                versions, self.driver.server.crashes,
                discard_all=(
                    self.meter.costs.async_commit_window_seconds > 0))
        self.meter.charge(CLIENT_CPU,
                          self.meter.costs.result_cache_probe_seconds,
                          "result cache probe")
        entry = cache.lookup(sql)
        if entry is None:
            return False
        if state.handle.result is not None:
            # The handle's previous server-side cursor (if any) must not
            # leak just because this execution never reaches the server.
            self._with_recovery(
                vconn, lambda: self.driver.close_statement(state.handle))
        state.mode = StatementMode.CACHED
        state.original_sql = sql
        state.columns = list(entry.columns)
        state.cache_rows = entry.rows
        state.cache_position = 0
        state.finished = False
        self.stats["shared_cache_hits"] += 1
        return True

    def _note_shared_cacheable(self, vconn: VirtualConnection,
                               state: StatementState, sql: str) -> None:
        """Admit (or stage) a freshly cached result into the shared cache.

        The execute that filled the §4 cache also delivered the result's
        read-version stamps (``driver.last_read_versions``); None means
        the server declared it unshareable.  Inside an application
        transaction the entry stays session-private until COMMIT."""
        cache = self._shared_cache
        if cache is None:
            return
        stamps = self.driver.last_read_versions
        if stamps is None:
            return
        if vconn.in_app_txn:
            vconn.staged_results.append(
                (sql, list(state.columns), list(state.cache_rows),
                 dict(stamps)))
            self.stats["shared_cache_staged"] += 1
            return
        cache.insert(sql, state.columns, state.cache_rows, stamps)

    def _promote_staged(self, vconn: VirtualConnection) -> None:
        """COMMIT: publish the transaction's staged results.

        Under strict 2PL the shared locks a transactional SELECT takes
        are held to commit, so a staged read table can only have moved
        if *this* transaction wrote it.  Entries whose read set
        intersects the commit's own write set are dropped outright —
        the write set carries no ordering, so a read that saw the write
        is indistinguishable from one the write later invalidated, and
        only dropping is sound.  The rest promote with their original
        stamps, which the commit just proved still current.
        """
        staged = vconn.staged_results
        vconn.staged_results = []
        vconn.dirty_tables = set()
        cache = self._shared_cache
        if cache is None or not staged:
            return
        committed = self.driver.last_table_versions
        for sql, columns, rows, stamps in staged:
            if not any(name in committed for name in stamps):
                cache.insert(sql, columns, rows, stamps)

    def _discard_staged(self, vconn: VirtualConnection) -> None:
        """ROLLBACK (or crash-induced abort): the staged results were
        produced by a transaction that never happened."""
        vconn.staged_results = []
        vconn.dirty_tables = set()

    # -- modifications / DDL (status-table wrapping, §3.2) -----------------------

    def _execute_update(self, vconn: VirtualConnection,
                        state: StatementState, sql: str,
                        params: dict | None) -> None:
        if vconn.in_app_txn:
            result = self._with_recovery(
                vconn, lambda: self.driver.execute(state.handle, sql,
                                                   params))
            state.mode = StatementMode.PASSTHROUGH
            state.rowcount = result.rowcount
            return
        op_key = self._next_op_key()

        def wrapped():
            recorded = self._status.completed(vconn.app_handle, op_key)
            if recorded is not None:
                state.rowcount = recorded
                return
            # A survived session may hold the half-done transaction of a
            # blip-interrupted attempt; discard it before retrying.
            self._status.reset_open_transaction(vconn.app_handle)
            scratch = StatementHandle(vconn.app_handle)
            self.driver.execute(scratch, "BEGIN TRANSACTION")
            try:
                result = self.driver.execute(state.handle, sql, params)
                count = max(result.rowcount, 0)
                self.driver.execute(scratch,
                                    self._status.record_sql(op_key, count))
                self.driver.execute(scratch, "COMMIT")
            except EngineError:
                # Statement failed for SQL reasons: roll back our wrapper
                # transaction and surface the error unchanged.
                self._status.reset_open_transaction(vconn.app_handle)
                raise
            state.rowcount = count

        self._with_recovery(vconn, wrapped)
        state.mode = StatementMode.UPDATE
        self.stats["wrapped_updates"] += 1

    # ------------------------------------------------------------------
    # Row delivery
    # ------------------------------------------------------------------

    def fetch(self, statement: StatementHandle):
        state = self._state_of(statement)
        if state is None or state.mode in (StatementMode.NONE,
                                           StatementMode.PASSTHROUGH):
            return super().fetch(statement)
        if state.mode is StatementMode.CACHED:
            self.meter.charge(CLIENT_CPU,
                              self.meter.costs.cache_fetch_seconds,
                              "cache fetch")
            row = self._cache.next_row(state)
            return (SQL_NO_DATA, None) if row is None else (SQL_SUCCESS,
                                                            row)
        if state.mode is StatementMode.PERSISTED:
            vconn = self._require_vconn(statement.connection)

            def op():
                row = self.driver.fetch_one(statement)
                self.meter.charge(
                    CLIENT_CPU,
                    self.meter.costs.persisted_fetch_extra_seconds,
                    "persisted fetch extra")
                return row

            rc, row = self._guard(
                statement, lambda: self._with_recovery(vconn, op))
            if rc != SQL_SUCCESS:
                return rc, None
            if row is None:
                state.finished = True
                return SQL_NO_DATA, None
            state.position += 1
            return SQL_SUCCESS, row
        return super().fetch(statement)

    def fetch_block(self, statement: StatementHandle, max_rows: int):
        state = self._state_of(statement)
        if state is not None and state.mode is StatementMode.CACHED:
            rows = []
            while len(rows) < max_rows:
                row = self._cache.next_row(state)
                if row is None:
                    break
                rows.append(row)
            self.meter.charge(
                CLIENT_CPU,
                max(1, len(rows))
                * self.meter.costs.cache_block_read_per_row_seconds,
                "cache block fetch")
            return (SQL_NO_DATA, []) if not rows else (SQL_SUCCESS, rows)
        if state is not None and state.mode is StatementMode.PERSISTED:
            vconn = self._require_vconn(statement.connection)
            rc, rows = self._guard(
                statement,
                lambda: self._with_recovery(
                    vconn,
                    lambda: self.driver.fetch_block(statement, max_rows)))
            if rc != SQL_SUCCESS:
                return rc, []
            if not rows:
                state.finished = True
                return SQL_NO_DATA, []
            state.position += len(rows)
            return SQL_SUCCESS, rows
        return super().fetch_block(statement, max_rows)

    def fetch_scroll(self, statement: StatementHandle, orientation: str,
                     offset: int = 0):
        """Scrollable fetch over a *persistent* cursor.

        Phoenix makes cursors recoverable for free: a CACHED result
        scrolls in client memory, and a PERSISTED result scrolls by
        position arithmetic over the materialized table (reopen +
        server-side advance for backward moves) — the remembered position
        doubles as the crash-recovery reposition target, so cursors
        survive server failures like everything else.
        """
        from repro.odbc.constants import (
            SQL_FETCH_ABSOLUTE,
            SQL_FETCH_FIRST,
            SQL_FETCH_LAST,
            SQL_FETCH_NEXT,
            SQL_FETCH_PRIOR,
            SQL_FETCH_RELATIVE,
        )

        state = self._state_of(statement)
        if state is None or state.mode not in (StatementMode.CACHED,
                                               StatementMode.PERSISTED):
            return super().fetch_scroll(statement, orientation, offset)

        def target_index(current: int, size: int) -> int:
            if orientation == SQL_FETCH_NEXT:
                return current + 1
            if orientation == SQL_FETCH_PRIOR:
                return current - 1
            if orientation == SQL_FETCH_FIRST:
                return 0
            if orientation == SQL_FETCH_LAST:
                return size - 1
            if orientation == SQL_FETCH_ABSOLUTE:
                return offset - 1
            if orientation == SQL_FETCH_RELATIVE:
                return current + offset
            from repro.errors import OdbcError

            raise OdbcError("HY106",
                            f"unknown orientation {orientation!r}")

        if state.mode is StatementMode.CACHED:
            self.meter.charge(CLIENT_CPU,
                              self.meter.costs.cache_fetch_seconds,
                              "cache scroll")
            size = len(state.cache_rows)
            current = size if state.finished else state.cache_position - 1
            target = target_index(current, size)
            if target < 0 or target >= size:
                state.cache_position = 0 if target < 0 else size
                state.finished = target >= size
                return SQL_NO_DATA, None
            state.cache_position = target + 1
            state.finished = False
            return SQL_SUCCESS, state.cache_rows[target]

        vconn = self._require_vconn(statement.connection)
        rc, row = self._guard(statement, lambda: self._scroll_persisted(
            vconn, state, statement, target_index))
        if rc == SQL_SUCCESS and row is None:
            return SQL_NO_DATA, None
        return rc, row

    def _scroll_persisted(self, vconn, state, statement, target_index):
        size = self._persisted_size(vconn, state)
        current = size if state.finished else state.position - 1
        target = target_index(current, size)
        if target < 0 or target >= size:
            # Park the cursor before-first / after-last by reopening and
            # advancing to the logical position.
            park = 0 if target < 0 else size
            state.position = park
            self._with_recovery(vconn, lambda: self._reopen_at(state, park))
            state.finished = target >= size
            return None
        if target != state.position:
            if target > state.position:
                skip = target - state.position
                skipped = self._with_recovery(
                    vconn, lambda: self.driver.advance(state.handle, skip))
                # ``advance`` may clamp (it skips only rows that exist);
                # track where the cursor really landed.
                state.position += skipped
            else:
                state.position = target
                self._with_recovery(
                    vconn, lambda: self._reopen_at(state, target))
        row = self._with_recovery(
            vconn, lambda: self.driver.fetch_one(statement))
        self.meter.charge(CLIENT_CPU,
                          self.meter.costs.persisted_fetch_extra_seconds,
                          "persisted fetch extra")
        if row is not None:
            state.position += 1
            state.finished = False
        return row

    def _reopen_at(self, state, position: int) -> None:
        from repro.phoenix.reposition import reposition

        self.driver.execute(state.handle,
                            f"SELECT * FROM {state.table_name}")
        reposition(self.driver, state.handle, position,
                   self.config.reposition_mode)

    def _persisted_size(self, vconn, state) -> int:
        if state.result_size >= 0:
            return state.result_size

        def count():
            scratch = StatementHandle(vconn.app_handle)
            self.driver.execute(
                scratch, f"SELECT count(*) FROM {state.table_name}")
            row = self.driver.fetch_one(scratch)
            self.driver.close_statement(scratch)
            return row[0]

        state.result_size = self._with_recovery(vconn, count)
        return state.result_size

    # ------------------------------------------------------------------
    # Metadata / cleanup
    # ------------------------------------------------------------------

    def num_result_cols(self, statement: StatementHandle) -> int:
        state = self._state_of(statement)
        if state is not None and state.columns:
            return len(state.columns)
        return super().num_result_cols(statement)

    def describe_col(self, statement: StatementHandle, position: int):
        state = self._state_of(statement)
        if state is not None and state.columns:
            column = state.columns[position - 1]
            return column.name, column.sql_type, column.length
        return super().describe_col(statement, position)

    def row_count(self, statement: StatementHandle) -> int:
        state = self._state_of(statement)
        if state is not None and state.rowcount >= 0:
            return state.rowcount
        return super().row_count(statement)

    def close_cursor(self, statement: StatementHandle) -> int:
        state = self._state_of(statement)
        if state is not None:
            self._drop_quietly(
                state.table_name,
                self._vconns.get(statement.connection.handle_id))
            state.reset()
        return super().close_cursor(statement)

    def free_statement(self, statement: StatementHandle) -> int:
        state = self._state_of(statement)
        if state is not None:
            vconn = self._vconns.get(statement.connection.handle_id)
            self._drop_quietly(state.table_name, vconn)
            if vconn is not None:
                vconn.statements.pop(statement.handle_id, None)
        return super().free_statement(statement)

    # ------------------------------------------------------------------
    # The recovery loop (§2.3)
    # ------------------------------------------------------------------

    def _with_recovery(self, vconn: VirtualConnection, operation,
                       retry_after_recovery: bool = True):
        """Run ``operation``, masking server failures.

        Transport errors trigger ping/reconnect and, if the session died,
        full two-phase recovery — then the operation is retried.  Every
        operation passed here is idempotent (persistence steps are
        guarded by the status table).
        """
        attempts = 0
        while True:
            try:
                return operation()
            except ReproError as error:
                if not is_transport_failure(error):
                    raise
                attempts += 1
                if attempts > 5:
                    raise RecoveryFailedError(
                        f"giving up after {attempts} attempts: {error}"
                    ) from error
                outcome = self._handle_failure(vconn, error)
                if outcome == "recovered" and not retry_after_recovery:
                    raise error

    def _handle_failure(self, vconn: VirtualConnection,
                        original: ReproError) -> str:
        """Detect, reconnect, recover.  Returns 'blip' or 'recovered'."""
        logger.info("failure intercepted: %s", original)
        if self._private is not None:
            self._private.connected = False  # will re-dial lazily
        # Failure detection is the first of the five recovery phases:
        # everything up to knowing whether the *session* (not just the
        # server) survived.  Timed with pure clock reads so the
        # bookkeeping itself costs no virtual time.
        obs = self.meter.obs
        peek = self.meter.peek_now
        detect_start = peek()
        if obs.enabled:
            with obs.tracer.span("recovery.failure_detection",
                                 layer="phoenix"):
                verdict = self._detect_failure(vconn)
        else:
            verdict = self._detect_failure(vconn)
        detection_seconds = peek() - detect_start
        if verdict == "down":
            # Give up and reveal the failure to the application,
            # passing along the original error (§2.3).
            logger.warning("reconnect budget exhausted; exposing failure")
            raise original
        if verdict == "blip":
            self.stats["blips"] += 1
            logger.info("session survived (network blip); retrying")
            return "blip"
        while True:
            try:
                self._recovery.recover_connection(
                    vconn, detection_seconds=detection_seconds)
                break
            except ReproError as error:
                # A failure during recovery: recovery is idempotent, so
                # wait for the server and run it again.
                if not is_transport_failure(error):
                    raise
                if not self._detector.await_server():
                    raise original
        self.stats["recoveries"] += 1
        logger.info("virtual session recovered: phases=%s",
                    self._recovery.last_phase_seconds)
        if vconn.in_app_txn:
            # The server aborted the application's transaction with the
            # crash; surface that as a normal transaction failure now
            # that the session itself is whole again.  Results the dead
            # transaction staged for the shared cache die with it.
            vconn.in_app_txn = False
            self._discard_staged(vconn)
            raise DeadlockError(
                "transaction aborted by server failure; please retry")
        return "recovered"

    # ------------------------------------------------------------------
    # Experiment instrumentation
    # ------------------------------------------------------------------

    def _detect_failure(self, vconn: VirtualConnection) -> str:
        """Ping until the server answers, then probe the session.

        Returns ``'down'`` (budget exhausted), ``'blip'`` (session
        survived — a network glitch) or ``'dead'`` (session lost; full
        recovery needed).
        """
        if not self._detector.await_server():
            return "down"
        if self._detector.session_survived(vconn.app_handle,
                                           vconn.probe_table):
            return "blip"
        return "dead"

    @property
    def recovery_phase_seconds(self) -> dict[str, float]:
        """Phase timings of the most recent session recovery (Fig. 3/4)."""
        return dict(self._recovery.last_phase_seconds)

    @property
    def recovery_phase_breakdown(self) -> dict[str, float]:
        """Five-phase breakdown of the most recent session recovery,
        keyed by :data:`repro.obs.RECOVERY_PHASES` names."""
        return dict(self._recovery.last_phase_breakdown)

    @property
    def persist_step_seconds(self) -> dict[str, float]:
        """Step timings of the most recent result persistence (§3.5)."""
        return dict(self._persistor.last_step_seconds)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _private_connection(self) -> ConnectionHandle:
        """Phoenix's own connection for masked activity (§2.2)."""
        if self._private is None or not self._private.connected:
            self._private = ConnectionHandle(self._private_env)
            self.driver.connect(self._private, "phoenix-private")
            self._status.ensure(self._private)
        return self._private

    def _next_op_key(self) -> str:
        self._op_seq += 1
        return f"{self._nonce}_{self._op_seq}"

    def _require_vconn(self, connection: ConnectionHandle) -> VirtualConnection:
        vconn = self._vconns.get(connection.handle_id)
        if vconn is None:
            raise EngineError("connection was not opened through Phoenix")
        return vconn

    def _state_of(self, statement: StatementHandle) -> StatementState | None:
        vconn = self._vconns.get(statement.connection.handle_id)
        if vconn is None:
            return None
        return vconn.statements.get(statement.handle_id)

    def _drop_quietly(self, table_name: str,
                      vconn: VirtualConnection | None = None) -> None:
        if not table_name:
            return
        try:
            # A table created inside a still-open application transaction
            # is X-locked by it; drop it on the app connection (joining
            # the transaction) instead of deadlocking from the private
            # connection.
            if vconn is not None and vconn.in_app_txn \
                    and vconn.app_handle.connected:
                connection = vconn.app_handle
            else:
                connection = self._private_connection()
            self._persistor.drop_result_table(connection, table_name)
        except ReproError:
            pass  # cleanup is best-effort

"""Two-phase virtual-session recovery (§2.3).

Phase 1 — *virtual session*: reconnect with the saved login, replay each
application-set connection option (one round trip apiece), re-bind the
virtual connection handle to the new server session, and recreate the
session probe.  The paper measured this phase at a constant 0.37 s; here
it emerges from one connect plus the option replays.

Phase 2 — *SQL state*: for every statement whose delivery was in
progress, verify the materialized table survived database recovery,
reopen it, and reposition to the remembered delivery location (client-
or server-side per configuration).  Fully-cached results need nothing —
that is the whole point of the client cache.

Recovery is idempotent: every step can be re-run after a crash *during*
recovery (reconnect replaces the session, reopen/reposition restart from
the recorded position).
"""

from __future__ import annotations

from repro.errors import PhoenixError
from repro.odbc.driver import NativeDriver
from repro.phoenix.config import PhoenixConfig
from repro.phoenix.failure import FailureDetector
from repro.phoenix.persistence import ResultPersistor
from repro.phoenix.reposition import reposition
from repro.phoenix.virtual_session import (
    StatementMode,
    VirtualConnection,
)
from repro.sim.meter import Meter


class SessionRecovery:
    """Rebuilds one virtual connection after a server restart."""

    def __init__(self, driver: NativeDriver, meter: Meter,
                 config: PhoenixConfig, persistor: ResultPersistor,
                 detector: FailureDetector):
        self._driver = driver
        self._meter = meter
        self._config = config
        self._persistor = persistor
        self._detector = detector
        self.recoveries = 0
        #: Phase timings of the most recent recovery (Figures 3 and 4):
        #: keys 'virtual_session' and 'sql_state', virtual seconds.
        self.last_phase_seconds: dict[str, float] = {}

    def recover_connection(self, vconn: VirtualConnection) -> None:
        self.recoveries += 1
        start = self._meter.now
        self._recover_virtual_session(vconn)
        mid = self._meter.now
        self._recover_sql_state(vconn)
        self.last_phase_seconds = {
            "virtual_session": mid - start,
            "sql_state": self._meter.now - mid,
        }

    # -- phase 1 ---------------------------------------------------------------

    def _recover_virtual_session(self, vconn: VirtualConnection) -> None:
        """Reconnect and re-map the virtual connection handle."""
        handle = vconn.app_handle
        handle.connected = False
        self._driver.connect(handle, vconn.login)
        for name, value in vconn.option_log:
            self._driver.set_connection_option(handle, name, value)
        self._detector.create_probe(handle, vconn.probe_table)
        vconn.connected = True

    # -- phase 2 ---------------------------------------------------------------

    def _recover_sql_state(self, vconn: VirtualConnection) -> None:
        for state in vconn.open_result_states():
            if state.mode is StatementMode.CACHED:
                continue  # the cache is client-resident: nothing to do
            if not self._persistor.table_exists(vconn.app_handle,
                                                state.table_name):
                raise PhoenixError(
                    f"materialized result {state.table_name!r} did not "
                    f"survive database recovery")
            self._driver.execute(state.handle,
                                 f"SELECT * FROM {state.table_name}")
            reposition(self._driver, state.handle, state.position,
                       self._config.reposition_mode)

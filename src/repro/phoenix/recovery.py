"""Two-phase virtual-session recovery (§2.3).

Phase 1 — *virtual session*: reconnect with the saved login, replay each
application-set connection option (one round trip apiece), re-bind the
virtual connection handle to the new server session, and recreate the
session probe.  The paper measured this phase at a constant 0.37 s; here
it emerges from one connect plus the option replays.

Phase 2 — *SQL state*: for every statement whose delivery was in
progress, verify the materialized table survived database recovery,
reopen it, and reposition to the remembered delivery location (client-
or server-side per configuration).  Fully-cached results need nothing —
that is the whole point of the client cache.

Recovery is idempotent: every step can be re-run after a crash *during*
recovery (reconnect replaces the session, reopen/reposition restart from
the recorded position).
"""

from __future__ import annotations

from repro.errors import PhoenixError
from repro.odbc.driver import NativeDriver
from repro.phoenix.config import PhoenixConfig
from repro.phoenix.failure import FailureDetector
from repro.phoenix.persistence import ResultPersistor
from repro.phoenix.reposition import reposition
from repro.phoenix.virtual_session import (
    StatementMode,
    VirtualConnection,
)
from repro.sim.meter import Meter


class SessionRecovery:
    """Rebuilds one virtual connection after a server restart."""

    def __init__(self, driver: NativeDriver, meter: Meter,
                 config: PhoenixConfig, persistor: ResultPersistor,
                 detector: FailureDetector):
        self._driver = driver
        self._meter = meter
        self._config = config
        self._persistor = persistor
        self._detector = detector
        self.recoveries = 0
        #: Phase timings of the most recent recovery (Figures 3 and 4):
        #: keys 'virtual_session' and 'sql_state', virtual seconds.
        self.last_phase_seconds: dict[str, float] = {}
        #: Finer per-phase breakdown of the most recent recovery, keyed
        #: by the canonical :data:`repro.obs.RECOVERY_PHASES` names.
        self.last_phase_breakdown: dict[str, float] = {}

    def recover_connection(self, vconn: VirtualConnection,
                           detection_seconds: float = 0.0) -> None:
        """Run both recovery phases, timing each fine-grained step.

        ``detection_seconds`` is how long the driver manager spent
        *noticing* the outage (pinging until the server answered) before
        calling us — it completes the five-phase breakdown.  All
        timestamps are :meth:`~repro.sim.meter.Meter.peek_now` pure
        reads, so the bookkeeping never perturbs the virtual clock.
        """
        self.recoveries += 1
        obs = self._meter.obs
        tracer = obs.tracer if obs.enabled else None
        breakdown: dict[str, float] = {
            "failure_detection": detection_seconds}
        peek = self._meter.peek_now

        def phase(name: str, step) -> None:
            t0 = peek()
            if tracer is not None:
                with tracer.span(f"recovery.{name}", layer="phoenix"):
                    step()
            else:
                step()
            breakdown[name] = breakdown.get(name, 0.0) + (peek() - t0)

        def run() -> None:
            start = peek()
            self._recover_virtual_session(vconn, phase)
            mid = peek()
            self._recover_sql_state(vconn, phase)
            self.last_phase_seconds = {
                "virtual_session": mid - start,
                "sql_state": peek() - mid,
            }

        if tracer is not None:
            with tracer.span("phoenix.recover", layer="phoenix",
                             recovery=self.recoveries):
                run()
        else:
            run()
        self.last_phase_breakdown = dict(breakdown)
        obs.record_recovery(breakdown, finished_at=peek())

    # -- phase 1 ---------------------------------------------------------------

    def _recover_virtual_session(self, vconn: VirtualConnection,
                                 phase) -> None:
        """Reconnect and re-map the virtual connection handle."""
        handle = vconn.app_handle

        def reconnect() -> None:
            handle.connected = False
            self._driver.connect(handle, vconn.login)

        def replay_options() -> None:
            for name, value in vconn.option_log:
                self._driver.set_connection_option(handle, name, value)

        phase("reconnect", reconnect)
        phase("option_replay", replay_options)
        phase("status_probe",
              lambda: self._detector.create_probe(handle,
                                                  vconn.probe_table))
        vconn.connected = True

    # -- phase 2 ---------------------------------------------------------------

    def _recover_sql_state(self, vconn: VirtualConnection, phase) -> None:
        for state in vconn.open_result_states():
            if state.mode is StatementMode.CACHED:
                continue  # the cache is client-resident: nothing to do
            phase("status_probe",
                  lambda s=state: self._verify_result(vconn, s))
            phase("reposition",
                  lambda s=state: self._reopen_result(s))

    def _verify_result(self, vconn: VirtualConnection, state) -> None:
        if not self._persistor.table_exists(vconn.app_handle,
                                            state.table_name):
            raise PhoenixError(
                f"materialized result {state.table_name!r} did not "
                f"survive database recovery")

    def _reopen_result(self, state) -> None:
        self._driver.execute(state.handle,
                             f"SELECT * FROM {state.table_name}")
        reposition(self._driver, state.handle, state.position,
                   self._config.reposition_mode)

"""Result-set persistence: the four steps of §2.1.

1. *Metadata*: re-issue the query wrapped with ``WHERE 0 = 1`` so only
   compilation happens server-side, and read the column metadata from
   the (empty) reply.
2. *Create*: build a ``CREATE TABLE`` for a Phoenix-owned persistent
   table from the metadata (issued on Phoenix's private connection so
   the application never sees the activity).
3. *Load*: create and execute a stored procedure
   ``INSERT INTO <table> <original query>`` so rows move locally on the
   server; the execution is wrapped with a status-table record so a
   crash-interrupted load is detected and re-run without duplication.
4. *Reopen*: ``SELECT * FROM <table>`` on the application's statement
   handle; delivery position is tracked for post-crash repositioning.

Every step is idempotent (exists-errors swallowed, load guarded by the
status table), which is what makes Phoenix recovery safely re-runnable.
"""

from __future__ import annotations

from repro.errors import CatalogError, TableExistsError, TableNotFoundError
from repro.odbc.driver import NativeDriver
from repro.odbc.handles import ConnectionHandle, StatementHandle
from repro.phoenix.config import PhoenixConfig
from repro.phoenix.status_table import StatusTable
from repro.phoenix.virtual_session import StatementMode, StatementState
from repro.sim.costs import CLIENT_CPU
from repro.sim.meter import Meter
from repro.sql.plan_cache import LRUCache
from repro.types import Column, SqlType


class ResultPersistor:
    """Materializes result sets into Phoenix-owned server tables."""

    def __init__(self, driver: NativeDriver, meter: Meter,
                 config: PhoenixConfig, status: StatusTable):
        self._driver = driver
        self._meter = meter
        self._config = config
        self._status = status
        #: Step timings of the most recent persist() (the §3.5 breakdown
        #: and Figure 6): keys metadata/create_table/load/reopen.
        self.last_step_seconds: dict[str, float] = {}
        #: Metadata-probe cache: (session token, query text, schema
        #: version) -> (columns, recorded charge segments).  A hit replays
        #: the exact virtual charges of the probe it skips, so metered
        #: time never changes.  Keying on the session token scopes entries
        #: to one connection epoch — a crash reconnects under a fresh
        #: token, orphaning every pre-crash entry.
        self._meta_cache = (LRUCache(config.metadata_cache_entries)
                            if config.metadata_cache_entries > 0 else None)

    # -- the pipeline ----------------------------------------------------------

    def persist(self, app_connection: ConnectionHandle,
                private_connection: ConnectionHandle,
                state: StatementState, sql: str, op_key: str,
                in_app_txn: bool = False) -> None:
        """Run steps 1-4 for ``sql`` on the app's statement handle.

        When the application holds an open transaction the load joins it
        (so the query sees the transaction's own writes) instead of
        wrapping its own status-guarded transaction — a crash aborts the
        application transaction anyway, which Phoenix surfaces as a
        normal transaction failure.
        """
        sql = sql.rstrip().rstrip(";")
        steps: dict[str, float] = {}
        obs = self._meter.obs
        tracer = obs.tracer if obs.enabled else None

        def step(name: str, fn):
            start = self._meter.now
            if tracer is not None:
                with tracer.span(f"persist.{name}", layer="phoenix"):
                    result = fn()
            else:
                result = fn()
            steps[name] = self._meter.now - start
            return result

        columns = step("metadata",
                       lambda: self._fetch_metadata(app_connection, sql))
        table_name = f"{self._config.table_prefix}rs_{op_key}"
        # Inside an application transaction the table is created on the
        # app connection so the DDL joins the transaction (no separate
        # commit force per result set); otherwise Phoenix's private
        # connection masks the activity, as §2.2 describes.
        create_connection = (app_connection if in_app_txn
                             else private_connection)
        step("create_table",
             lambda: self._create_result_table(create_connection,
                                               table_name, columns))
        step("load", lambda: self._load_result(app_connection, table_name,
                                               sql, op_key, in_app_txn))
        step("reopen", lambda: self.reopen(state, table_name, columns,
                                           sql, position=0))
        self.last_step_seconds = steps

    def _fetch_metadata(self, connection: ConnectionHandle,
                        sql: str) -> list[Column]:
        """Step 1: the WHERE 0=1 trick — compile-only, metadata back.

        Probes for the same query text repeat identically until the
        server's schema changes, so their (columns, charges) outcome is
        memoized.  Temp-table queries are never cached — their metadata
        is session state that can change without any DDL the schema
        version would record.
        """
        cacheable = self._meta_cache is not None and "#" not in sql
        if cacheable:
            key = (connection.session_token, sql,
                   self._driver.last_schema_version)
            hit = self._meta_cache.get(key)
            if hit is not None:
                columns, segments = hit
                self._meter.replay_segments(segments)
                self._meter.count("meta_probe_hits")
                return list(columns)
            self._meter.count("meta_probe_misses")
        sink = self._meter.push_recorder() if cacheable else None
        try:
            scratch = StatementHandle(connection)
            self._driver.execute(
                scratch, f"SELECT * FROM ({sql}) phx_md WHERE 0 = 1")
            columns = list(scratch.result.columns)
            self._driver.close_statement(scratch)
            self._meter.charge(CLIENT_CPU,
                               self._meter.costs.metadata_read_seconds,
                               "phoenix metadata")
        finally:
            if sink is not None:
                segments = self._meter.pop_recorder(sink)
        if cacheable:
            # Key on the version the server reported while answering —
            # the probe response itself may have advanced our view.
            self._meta_cache.put(
                (connection.session_token, sql,
                 self._driver.last_schema_version),
                (tuple(columns), tuple(segments)))
        return columns

    def _create_result_table(self, connection: ConnectionHandle,
                             table_name: str,
                             columns: list[Column]) -> None:
        """Step 2: persistent table shaped like the result."""
        defs = ", ".join(
            f"c{i + 1} {self._render_type(col)}"
            for i, col in enumerate(columns))
        scratch = StatementHandle(connection)
        try:
            self._driver.execute(scratch,
                                 f"CREATE TABLE {table_name} ({defs})")
        except TableExistsError:
            pass  # created before a crash interrupted us — reuse it

    def _load_result(self, connection: ConnectionHandle, table_name: str,
                     sql: str, op_key: str, in_app_txn: bool) -> None:
        """Step 3: stored-procedure load, status-guarded for idempotence."""
        if not in_app_txn \
                and self._status.completed(connection, op_key) is not None:
            return  # a pre-crash incarnation already loaded the table
        proc_name = f"{self._config.table_prefix}load_{op_key}"
        scratch = StatementHandle(connection)
        execute = self._driver.execute
        if self._meter.costs.persist_pipeline and not in_app_txn:
            # Pipeline the whole chain: the expensive server-local steps
            # (procedure creation, the INSERT..SELECT move) overlap the
            # uplinks of the round trips queued behind them.  Responses
            # are still produced in issue order and errors still raise
            # at their own call site, so the idempotence guards below
            # work unchanged; only the virtual-time accounting defers.
            execute = self._driver.execute_pipelined
        try:
            execute(
                scratch,
                f"CREATE PROCEDURE {proc_name} AS "
                f"INSERT INTO {table_name} {sql}")
        except CatalogError:
            pass  # procedure survived an interrupted earlier attempt
        if in_app_txn:
            # Join the application's transaction: the load must see its
            # uncommitted writes, and it aborts with the transaction.
            self._driver.execute(scratch, f"EXEC {proc_name}")
        else:
            execute(scratch, "BEGIN TRANSACTION")
            execute(scratch, f"EXEC {proc_name}")
            execute(scratch, self._status.record_sql(op_key, 0))
            execute(scratch, "COMMIT")
        try:
            execute(scratch, f"DROP PROCEDURE {proc_name}")
        except CatalogError:
            pass
        # Realize any outstanding overlapped service before the step
        # timer stops, so the §3.5 load-step breakdown stays honest.
        self._driver.drain_pipeline()

    def reopen(self, state: StatementState, table_name: str,
               columns: list[Column], sql: str, position: int) -> None:
        """Step 4: open the persistent table on the app's handle."""
        self._driver.execute(state.handle, f"SELECT * FROM {table_name}")
        state.mode = StatementMode.PERSISTED
        state.original_sql = sql
        state.table_name = table_name
        state.columns = columns
        state.position = position
        state.finished = False

    def drop_result_table(self, connection: ConnectionHandle,
                          table_name: str) -> None:
        """Cleanup when the application closes/re-executes a statement."""
        if not table_name:
            return
        scratch = StatementHandle(connection)
        try:
            self._driver.execute(scratch, f"DROP TABLE {table_name}")
        except TableNotFoundError:
            pass

    def table_exists(self, connection: ConnectionHandle,
                     table_name: str) -> bool:
        """Recovery verification: did database recovery bring the
        materialized result back?  (It must have — it was committed.)"""
        scratch = StatementHandle(connection)
        try:
            self._driver.execute(scratch,
                                 f"SELECT count(*) FROM {table_name} "
                                 f"WHERE 0 = 1")
        except TableNotFoundError:
            return False
        self._driver.close_statement(scratch)
        return True

    @staticmethod
    def _render_type(column: Column) -> str:
        if column.sql_type in (SqlType.VARCHAR, SqlType.CHAR):
            length = column.length or 32
            return f"{column.sql_type.value}({length})"
        return column.sql_type.value

"""Phoenix configuration knobs.

Defaults mirror the paper's setup: client caching is *off* (it is the §4
optimization, enabled per-connection at create time — "the size of this
client cache is a runtime parameter, set when a database connection is
first created"), repositioning is client-side (Fig. 3; Fig. 4 flips it to
server-side).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PhoenixConfig:
    """Runtime parameters of one Phoenix driver manager."""

    #: §4 client result cache: when > 0, result sets up to this many rows
    #: are cached client-side instead of materialized on the server.
    client_cache_rows: int = 0

    #: How to reposition inside a persisted result set during recovery:
    #: 'client' fetches rows through the connection and discards them
    #: (Fig. 3); 'server' uses the repositioning stored procedure that
    #: advances without shipping tuples (Fig. 4).
    reposition_mode: str = "client"

    #: Seconds between reconnect attempts while the server is down.
    retry_interval_seconds: float = 1.0

    #: Total budget before Phoenix gives up and exposes the failure
    #: ("after a period of time, if Phoenix is unable to connect, it
    #: gives up and reveals the failure to the application").
    reconnect_budget_seconds: float = 120.0

    #: Prefix for Phoenix-owned persistent objects.  Tables starting with
    #: this prefix live in the "special Phoenix database" and are exempt
    #: from cost-model work amplification.
    table_prefix: str = "phoenix_"

    #: Name of the status table used for update testability.
    status_table: str = "phoenix_status"

    #: Entries in the metadata-probe cache: repeated persists of the same
    #: query text skip the WHERE 0=1 round trip, replaying its recorded
    #: virtual charges instead (a host-time optimization; virtual time is
    #: unchanged).  0 disables the cache.
    metadata_cache_entries: int = 256

    def validate(self) -> None:
        if self.metadata_cache_entries < 0:
            raise ValueError("metadata_cache_entries cannot be negative")
        if self.reposition_mode not in ("client", "server"):
            raise ValueError(
                f"reposition_mode must be 'client' or 'server', "
                f"got {self.reposition_mode!r}")
        if self.client_cache_rows < 0:
            raise ValueError("client_cache_rows cannot be negative")
        if self.retry_interval_seconds <= 0:
            raise ValueError("retry_interval_seconds must be positive")

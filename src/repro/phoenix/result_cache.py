"""Transaction-consistent shared result cache (driver-manager level).

One cache per simulated world, shared by every virtual session the
driver manager multiplexes — the natural widening of the paper's §4
per-session client cache.  Entries are keyed by the normalized statement
text (parameters arrive pre-inlined at this layer) and stamped with the
per-table *DML version* of every table the plan read, as reported by the
server alongside the result (``ExecuteResponse.read_versions``).  The
consistency recipe follows "Theory and Practice of Transactional Method
Caching": versions bump once per committed writer transaction, every
response piggybacks the bumps committed since the last round trip
(``ExecuteResponse.table_versions``), and the client folds them into a
committed-version *mirror* — evicting any entry stamped with a bumped
table.  A lookup therefore only has to compare stamps against the
mirror: no round trip, no re-execution.

Crash epochs: piggybacked versions are only trusted within one server
incarnation (``server.crashes``).  When the epoch moves — or any
observation arrives from an unexpected epoch — the cache flags itself
stale and the next probe revalidates the whole cache with a single
``VersionProbeRequest``: entries whose stamps match the server's
recomputed vector survive (the paper's crash-proof client cache,
demonstrated at driver-manager scale), the rest are discarded.  Under
asynchronous commit a crash can lose acked commits, making equal counts
name different data, so revalidation then discards everything
(``discard_all``).

All observability counters (``result_cache.*``, including the per-table
``result_cache.hits.<t>`` family surfaced by ``sys_metrics`` /
``sys_result_cache``) are world counters via ``meter.count`` — the cache
only exists while ``CostModel.result_cache_entries`` > 0, so seed runs
carry none of them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


def normalize_key(sql: str) -> str:
    """Whitespace-collapsed statement text (the cache key)."""
    return " ".join(sql.split())


@dataclass(slots=True)
class CacheEntry:
    """One cached result with its validity certificate."""

    key: str
    columns: list
    rows: list
    #: table -> DML version observed when the result was produced.
    stamps: dict
    tables: frozenset = field(default_factory=frozenset)


class SharedResultCache:
    """LRU of version-stamped results, shared across virtual sessions."""

    def __init__(self, meter):
        self.meter = meter
        self.capacity = meter.costs.result_cache_entries
        self.max_rows = meter.costs.result_cache_max_rows
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        #: Committed per-table versions as far as this client knows
        #: (absent = 0, matching the server's own convention).
        self.versions: dict[str, int] = {}
        #: Server incarnation the mirror belongs to.
        self.epoch = 0
        #: Set when an observation arrived from an unexpected epoch; a
        #: probe-based revalidation clears it.
        self.stale = False

    @classmethod
    def shared(cls, meter) -> "SharedResultCache":
        """The world's one cache, keyed off the meter (every layer of one
        simulated world shares the meter, so this is world-scoped state
        exactly like the Phoenix nonce counter)."""
        cache = getattr(meter, "_shared_result_cache", None)
        if cache is None:
            cache = cls(meter)
            meter._shared_result_cache = cache
        return cache

    def __len__(self) -> int:
        return len(self._entries)

    # -- invalidation ------------------------------------------------------

    def observe_committed(self, updates: dict, epoch: int) -> None:
        """Fold piggybacked version bumps into the mirror, evicting every
        entry stamped with a bumped table.  Bumps from another server
        incarnation are *not* trusted — they flag the cache stale so the
        next probe revalidates against the full recomputed vector."""
        if epoch != self.epoch:
            self.stale = True
            return
        for name, version in updates.items():
            if self.versions.get(name, 0) != version:
                self._evict_stamped(name)
                self.versions[name] = version

    def needs_revalidation(self, current_epoch: int) -> bool:
        return self.stale or current_epoch != self.epoch

    def revalidate(self, server_versions: dict, current_epoch: int,
                   discard_all: bool = False) -> None:
        """Adopt the server's version vector wholesale; keep only entries
        every one of whose stamps it confirms.  ``discard_all`` (async
        commit: lost acked commits make counts ambiguous across a crash)
        drops everything regardless of stamps."""
        survivors: list[CacheEntry] = []
        for entry in self._entries.values():
            if not discard_all and all(
                    server_versions.get(name, 0) == version
                    for name, version in entry.stamps.items()):
                survivors.append(entry)
            else:
                self._count_invalidation(entry)
        self._entries = OrderedDict((e.key, e) for e in survivors)
        self.versions = dict(server_versions)
        self.epoch = current_epoch
        self.stale = False

    def _evict_stamped(self, table: str) -> None:
        for key in [k for k, e in self._entries.items()
                    if table in e.tables]:
            self._count_invalidation(self._entries.pop(key))

    def _count_invalidation(self, entry: CacheEntry) -> None:
        self.meter.count("result_cache.invalidations")
        for name in sorted(entry.tables):
            self.meter.count(f"result_cache.invalidations.{name}")

    # -- lookup / insert ---------------------------------------------------

    def lookup(self, sql: str) -> CacheEntry | None:
        """A valid entry for ``sql``, or None (counted as hit/miss)."""
        key = normalize_key(sql)
        entry = self._entries.get(key)
        if entry is not None and any(
                self.versions.get(name, 0) != version
                for name, version in entry.stamps.items()):
            # Defensive: observe_committed evicts eagerly, so a live
            # entry should always match the mirror — but a mismatch must
            # never be served.
            self._count_invalidation(self._entries.pop(key))
            entry = None
        if entry is None:
            self.meter.count("result_cache.misses")
            return None
        self._entries.move_to_end(key)
        self.meter.count("result_cache.hits")
        for name in sorted(entry.tables):
            self.meter.count(f"result_cache.hits.{name}")
        return entry

    def insert(self, sql: str, columns: list, rows: list,
               stamps: dict | None) -> bool:
        """Admit one result (post-miss).  Refused when the server marked
        it unshareable (``stamps`` None), it exceeds ``max_rows``, or a
        stamp is *behind* the mirror (the read predates a bump the
        client already folded — e.g. a transaction's staged entry whose
        read table it later wrote itself).  A stamp *ahead* of the
        mirror is a fresher committed-version observation than any
        response piggyback delivered (commits from before this cache
        existed): it is folded in, evicting anything stamped older."""
        if stamps is None or len(rows) > self.max_rows:
            return False
        if any(version < self.versions.get(name, 0)
               for name, version in stamps.items()):
            return False
        for name in sorted(stamps):
            if stamps[name] > self.versions.get(name, 0):
                self._evict_stamped(name)
                self.versions[name] = stamps[name]
        key = normalize_key(sql)
        for name in sorted(stamps):
            self.meter.count(f"result_cache.misses.{name}")
        self._entries[key] = CacheEntry(
            key=key, columns=list(columns), rows=list(rows),
            stamps=dict(stamps), tables=frozenset(stamps))
        self._entries.move_to_end(key)
        self.meter.count("result_cache.insertions")
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.meter.count("result_cache.evictions")
        return True

"""Phoenix housekeeping: orphaned-object cleanup.

Phoenix materializes result sets as ordinary committed tables, so a
client that dies (or just forgets to close cursors) leaves
``phoenix_rs_*`` tables and ``phoenix_load_*`` procedures behind on the
server.  The paper's design implies a garbage-collection story (result
tables "are part of a special Phoenix database"); this module provides
it as a plain SQL client: enumerate Phoenix-owned objects through the
``sys_tables`` / ``sys_procedures`` system tables and drop the ones no
live manager claims.

Status-table entries are also prunable: a record only matters while some
client might still retry the operation it guards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.odbc.driver import NativeDriver
from repro.odbc.handles import (
    ConnectionHandle,
    EnvironmentHandle,
    StatementHandle,
)
from repro.phoenix.config import PhoenixConfig
from repro.phoenix.driver_manager import PhoenixDriverManager


@dataclass
class CleanupReport:
    """What a cleanup pass removed."""

    dropped_tables: list[str] = field(default_factory=list)
    dropped_procedures: list[str] = field(default_factory=list)
    pruned_status_keys: list[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return (len(self.dropped_tables) + len(self.dropped_procedures)
                + len(self.pruned_status_keys))


def live_op_keys(managers: list[PhoenixDriverManager]) -> set[str]:
    """Result-table op keys still claimed by live managers' statements."""
    keys: set[str] = set()
    for manager in managers:
        prefix = manager.config.table_prefix
        for vconn in manager._vconns.values():
            for state in vconn.statements.values():
                if state.table_name.startswith(f"{prefix}rs_"):
                    keys.add(state.table_name[len(f"{prefix}rs_"):])
    return keys


def cleanup_orphans(driver: NativeDriver,
                    managers: list[PhoenixDriverManager] | None = None,
                    config: PhoenixConfig | None = None) -> CleanupReport:
    """Drop Phoenix-owned server objects no live manager claims.

    ``managers`` is the set of Phoenix driver managers still running in
    this process (their open results are preserved); an operator cleaning
    up after dead clients passes an empty list.
    """
    config = config if config is not None else PhoenixConfig()
    claimed = live_op_keys(managers or [])
    report = CleanupReport()

    env = EnvironmentHandle()
    connection = ConnectionHandle(env)
    driver.connect(connection, "phoenix-maintenance")
    try:
        rs_prefix = f"{config.table_prefix}rs_"
        load_prefix = f"{config.table_prefix}load_"
        for name in _query_column(driver, connection,
                                  "SELECT name FROM sys_tables "
                                  f"WHERE name LIKE '{rs_prefix}%' "
                                  "ORDER BY name"):
            if name[len(rs_prefix):] in claimed:
                continue
            if _execute_quietly(driver, connection, f"DROP TABLE {name}"):
                report.dropped_tables.append(name)
        for name in _query_column(driver, connection,
                                  "SELECT name FROM sys_procedures "
                                  f"WHERE name LIKE '{load_prefix}%' "
                                  "ORDER BY name"):
            if name[len(load_prefix):] in claimed:
                continue
            if _execute_quietly(driver, connection,
                                f"DROP PROCEDURE {name}"):
                report.dropped_procedures.append(name)
        report.pruned_status_keys = _prune_status(driver, connection,
                                                  config, claimed)
    finally:
        driver.disconnect(connection)
    return report


def _prune_status(driver: NativeDriver, connection: ConnectionHandle,
                  config: PhoenixConfig, claimed: set[str]) -> list[str]:
    try:
        keys = _query_column(driver, connection,
                             f"SELECT op_key FROM {config.status_table}")
    except ReproError:
        return []  # no status table yet: nothing to prune
    pruned = []
    for key in keys:
        if key in claimed:
            continue
        if _execute_quietly(driver, connection,
                            f"DELETE FROM {config.status_table} "
                            f"WHERE op_key = '{key}'"):
            pruned.append(key)
    return pruned


def _query_column(driver: NativeDriver, connection: ConnectionHandle,
                  sql: str) -> list:
    scratch = StatementHandle(connection)
    driver.execute(scratch, sql)
    values = []
    while True:
        row = driver.fetch_one(scratch)
        if row is None:
            break
        values.append(row[0])
    return values


def _execute_quietly(driver: NativeDriver, connection: ConnectionHandle,
                     sql: str) -> bool:
    scratch = StatementHandle(connection)
    try:
        driver.execute(scratch, sql)
        return True
    except ReproError:
        return False

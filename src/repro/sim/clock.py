"""A deterministic virtual clock.

All timing in the reproduction is virtual: components never call
``time.time()``.  Instead they advance a :class:`VirtualClock` through a
:class:`~repro.sim.meter.Meter`.  This keeps every experiment deterministic
and lets a laptop report server-scale timings.
"""

from __future__ import annotations


class VirtualClock:
    """Monotonic virtual clock measured in seconds.

    The clock only moves forward.  ``advance`` is the sole mutator so tests
    can assert exactly how much virtual time an operation consumed.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("clock cannot start before time zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        self._now += seconds
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6f})"

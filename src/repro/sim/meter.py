"""The meter: where components charge virtual time.

A single :class:`Meter` instance is threaded through one simulated "world"
(server + network + client).  Components call :meth:`Meter.charge` with a
resource name and a duration; the meter advances the world's virtual clock
and appends a :class:`Segment` to the trace of the request currently in
flight.

Two consumers read the traces:

* single-stream experiments just read ``clock.now`` (serial execution —
  total elapsed time is the sum of all segments), and
* multi-stream experiments (TPC-H throughput, TPC-C) replay per-request
  traces through :class:`~repro.sim.queueing.QueueingSimulator` so that
  contention on shared server resources is modeled by queueing.

The meter also keeps named counters (pages read, log bytes, ...) used by
the micro-overhead experiment and by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from repro.obs import Observability
from repro.sim.clock import VirtualClock
from repro.sim.costs import ALL_RESOURCES, CostModel

# Frozen copy for O(1) membership on the charge hot path (ALL_RESOURCES
# stays a tuple because callers rely on its canonical order).
_RESOURCE_SET = frozenset(ALL_RESOURCES)


class Segment(NamedTuple):
    """One contiguous use of one resource.

    A NamedTuple rather than a frozen dataclass: one Segment is built per
    ``charge`` call, which is the single hottest allocation site in the
    simulator.
    """

    resource: str
    seconds: float
    note: str = ""


@dataclass
class RequestTrace:
    """Ordered resource usage of one client-visible request."""

    label: str
    segments: list[Segment] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.segments)

    def seconds_on(self, resource: str) -> float:
        return sum(s.seconds for s in self.segments if s.resource == resource)


class Meter:
    """Charges virtual time against resources and records request traces."""

    def __init__(self, cost_model: CostModel | None = None,
                 clock: VirtualClock | None = None):
        self.costs = cost_model if cost_model is not None else CostModel()
        self.clock = clock if clock is not None else VirtualClock()
        self.traces: list[RequestTrace] = []
        #: The observability bundle of this world: tracer + metrics +
        #: recovery log.  Span timestamps come from :meth:`peek_now` — a
        #: pure read — so tracing can never move the virtual clock.
        self.obs = Observability(self.peek_now)
        #: Legacy diagnostic counters; the dict *is* the metrics
        #: registry's counter store, so both views stay in sync.
        self.counters: dict[str, float] = self.obs.metrics.counters
        self._open_requests: list[RequestTrace] = []
        #: When False, ``charge`` records segments but does not advance the
        #: clock.  Multi-stream experiments set this so elapsed time comes
        #: from the queueing simulator instead of serial accumulation.
        self.advance_clock: bool = True
        # Pending batched charge: (resource, note, accumulated seconds).
        self._pending: tuple[str, str, float] | None = None
        self._recorders: list[list[Segment]] = []
        #: Executor diagnostics (batches per operator, fast-path counts).
        #: Kept out of ``counters`` so virtual-output equivalence checks
        #: comparing counters are not perturbed by host-side bookkeeping.
        self.executor_stats: dict[str, int] = {}
        # Memoized "charge.<resource>" metric names (host-only: avoids an
        # f-string per charge).
        self._charge_metric_names: dict[str, str] = {}
        # Overlap window state (pipelined result delivery): while a
        # window is open, charges are recorded (recorders + metrics) but
        # neither advance the clock nor land in the open request trace.
        self._overlap_saved_advance: bool | None = None
        self._suppress_trace = False

    # -- charging -----------------------------------------------------------

    def charge(self, resource: str, seconds: float, note: str = "") -> None:
        """Charge ``seconds`` of use of ``resource`` to the current request."""
        if self._pending is not None:
            self._flush_pending()
        if resource not in _RESOURCE_SET:
            raise ValueError(f"unknown resource {resource!r}")
        if seconds <= 0:
            if seconds < 0:
                raise ValueError("cannot charge negative time")
            return
        if self.advance_clock:
            self.clock.advance(seconds)
        obs = self.obs
        if obs.enabled:
            metric = self._charge_metric_names.get(resource)
            if metric is None:
                metric = f"charge.{resource}"
                self._charge_metric_names[resource] = metric
            obs.metrics.observe(metric, seconds)
        segment = Segment(resource, seconds, note)
        open_requests = self._open_requests
        if open_requests and not self._suppress_trace:
            open_requests[-1].segments.append(segment)
        for sink in self._recorders:
            sink.append(segment)

    def charge_batched(self, resource: str, seconds: float,
                       note: str = "") -> None:
        """Accumulate a hot-path charge, flushed as one ``charge`` later.

        Batching changes only the *granularity* of segments, never the
        total, so it is safe only when the serial clock is authoritative.
        Multi-stream experiments (``advance_clock`` False) replay traces
        through the queueing simulator, where segment boundaries determine
        how streams interleave — there we fall through to per-call
        ``charge`` so recorded traces are identical to the unbatched ones.
        """
        if not self.advance_clock:
            self.charge(resource, seconds, note)
            return
        if self._pending is not None:
            p_resource, p_note, p_seconds = self._pending
            if p_resource == resource and p_note == note:
                self._pending = (resource, note, p_seconds + seconds)
                return
            self._flush_pending()
        self._pending = (resource, note, seconds)

    def charge_rows(self, resource: str, per_row: float, n: int,
                    note: str = "") -> None:
        """Charge ``per_row`` seconds ``n`` times, as one batched update.

        Equivalent to ``n`` calls to :meth:`charge_batched` with the same
        arguments — including the floating-point result.  Repeated addition
        is not multiplication in IEEE 754, and the bit-identical contract of
        the batch executor requires reproducing the exact left-fold the
        row-at-a-time path performs, so this loops rather than multiplies.
        """
        if n <= 0 or per_row <= 0:
            return
        if not self.advance_clock:
            # Multi-stream mode: segment boundaries feed the queueing
            # simulator, so emit per-row segments exactly as before.
            for _ in range(n):
                self.charge(resource, per_row, note)
            return
        if self._pending is not None:
            p_resource, p_note, total = self._pending
            if p_resource != resource or p_note != note:
                self._flush_pending()
                total = 0.0
        else:
            total = 0.0
        for _ in range(n):
            total += per_row
        self._pending = (resource, note, total)

    def charge_run_list(self, resource: str, runs, note: str = "") -> None:
        """Charge a sequence of ``(per_row, count)`` runs, fold-preserving.

        The batch executor defers per-row charges and replays them here in
        the exact order the row-at-a-time engine would have issued them;
        each run expands to ``count`` individual additions into the
        pending accumulator (see :meth:`charge_rows` for why).
        """
        if not runs:
            return
        if not self.advance_clock:
            for per_row, n in runs:
                if per_row > 0:
                    for _ in range(n):
                        self.charge(resource, per_row, note)
            return
        if self._pending is not None:
            p_resource, p_note, total = self._pending
            if p_resource != resource or p_note != note:
                self._flush_pending()
                total = 0.0
        else:
            total = 0.0
        for per_row, n in runs:
            if n == 1:
                total += per_row
            else:
                for _ in range(n):
                    total += per_row
        self._pending = (resource, note, total)

    def _flush_pending(self) -> None:
        """Emit the accumulated batched charge as one real segment."""
        if self._pending is None:
            return
        resource, note, seconds = self._pending
        self._pending = None
        self.charge(resource, seconds, note)

    # -- segment recording (metadata-probe replay support) ------------------

    def push_recorder(self) -> list[Segment]:
        """Start teeing every charged segment into a fresh list."""
        self._flush_pending()
        sink: list[Segment] = []
        self._recorders.append(sink)
        return sink

    def pop_recorder(self, sink: list[Segment]) -> list[Segment]:
        """Stop recording into ``sink`` (must be the innermost recorder)."""
        self._flush_pending()
        if not self._recorders or self._recorders[-1] is not sink:
            raise ValueError("recorders must be popped innermost-first")
        self._recorders.pop()
        return sink

    def replay_segments(self, segments: list[Segment]) -> None:
        """Re-charge a recorded segment sequence verbatim."""
        for seg in segments:
            self.charge(seg.resource, seg.seconds, seg.note)

    # -- overlap windows (pipelined result delivery) -------------------------

    def begin_overlap(self) -> list[Segment]:
        """Open an overlap window: subsequent charges are *recorded but
        not clocked*.

        Used for requests whose service overlaps client compute
        (fetch-ahead, pipelined persist loads): every charge inside the
        window still reaches the metrics registry and any recorder
        sinks — it is real resource usage — but the serial clock stays
        put and the open request trace stays client-perspective (the
        caller charges the *unoverlapped* remainder at its sync point).
        Windows do not nest.
        """
        if self._suppress_trace:
            raise ValueError("overlap windows do not nest")
        sink = self.push_recorder()
        self._overlap_saved_advance = self.advance_clock
        self.advance_clock = False
        self._suppress_trace = True
        return sink

    def end_overlap(self, sink: list[Segment]) -> float:
        """Close the overlap window; returns its total recorded seconds
        (the request's virtual service time)."""
        self._flush_pending()  # still suppressed: lands in the sink
        self.pop_recorder(sink)
        self.advance_clock = self._overlap_saved_advance
        self._overlap_saved_advance = None
        self._suppress_trace = False
        return sum(segment.seconds for segment in sink)

    def count(self, counter: str, amount: float = 1.0) -> None:
        """Increment a named diagnostic counter (a registry counter)."""
        self.obs.metrics.count(counter, amount)

    # -- request bracketing ---------------------------------------------------

    def begin_request(self, label: str) -> RequestTrace:
        """Open a request trace; nested requests attach to the innermost."""
        self._flush_pending()
        trace = RequestTrace(label=label)
        self._open_requests.append(trace)
        return trace

    def end_request(self, trace: RequestTrace) -> RequestTrace:
        """Close ``trace`` and append it to the recorded traces."""
        self._flush_pending()
        if not self._open_requests or self._open_requests[-1] is not trace:
            raise ValueError("request traces must be closed innermost-first")
        self._open_requests.pop()
        if self._open_requests:
            # Nested request: fold its segments into the enclosing trace so
            # the client-visible request carries the full cost.  Only
            # top-level traces are recorded, so nothing is double counted.
            self._open_requests[-1].segments.extend(trace.segments)
        else:
            self.traces.append(trace)
        return trace

    class _RequestContext:
        def __init__(self, meter: "Meter", label: str):
            self._meter = meter
            self._label = label
            self.trace: RequestTrace | None = None

        def __enter__(self) -> RequestTrace:
            self.trace = self._meter.begin_request(self._label)
            return self.trace

        def __exit__(self, exc_type, exc, tb) -> None:
            assert self.trace is not None
            self._meter.end_request(self.trace)

    def request(self, label: str) -> "Meter._RequestContext":
        """Context manager bracketing one client-visible request."""
        return Meter._RequestContext(self, label)

    # -- reading -----------------------------------------------------------

    @property
    def now(self) -> float:
        self._flush_pending()
        return self.clock.now

    def peek_now(self) -> float:
        """Current virtual time *without* flushing the pending batched
        charge — a pure read.  Instrumentation (span timestamps,
        recovery-phase bookkeeping) uses this so observation never
        perturbs segment granularity, let alone the clock itself."""
        pending = self._pending
        if pending is not None:
            return self.clock.now + pending[2]
        return self.clock.now

    def reset_traces(self) -> None:
        """Drop recorded traces and counters (clock keeps its value)."""
        self._flush_pending()
        self.traces.clear()
        self.counters.clear()

    def seconds_on(self, resource: str) -> float:
        """Total recorded seconds on ``resource`` across all closed traces."""
        self._flush_pending()
        return sum(t.seconds_on(resource) for t in self.traces)

"""The meter: where components charge virtual time.

A single :class:`Meter` instance is threaded through one simulated "world"
(server + network + client).  Components call :meth:`Meter.charge` with a
resource name and a duration; the meter advances the world's virtual clock
and appends a :class:`Segment` to the trace of the request currently in
flight.

Two consumers read the traces:

* single-stream experiments just read ``clock.now`` (serial execution —
  total elapsed time is the sum of all segments), and
* multi-stream experiments (TPC-H throughput, TPC-C) replay per-request
  traces through :class:`~repro.sim.queueing.QueueingSimulator` so that
  contention on shared server resources is modeled by queueing.

The meter also keeps named counters (pages read, log bytes, ...) used by
the micro-overhead experiment and by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from repro.obs import Observability
from repro.sim.clock import VirtualClock
from repro.sim.costs import ALL_RESOURCES, CostModel

# Frozen copy for O(1) membership on the charge hot path (ALL_RESOURCES
# stays a tuple because callers rely on its canonical order).
_RESOURCE_SET = frozenset(ALL_RESOURCES)


class Segment(NamedTuple):
    """One contiguous use of one resource.

    A NamedTuple rather than a frozen dataclass: one Segment is built per
    ``charge`` call, which is the single hottest allocation site in the
    simulator.
    """

    resource: str
    seconds: float
    note: str = ""


@dataclass
class RequestTrace:
    """Ordered resource usage of one client-visible request."""

    label: str
    segments: list[Segment] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.segments)

    def seconds_on(self, resource: str) -> float:
        return sum(s.seconds for s in self.segments if s.resource == resource)


class Meter:
    """Charges virtual time against resources and records request traces."""

    def __init__(self, cost_model: CostModel | None = None,
                 clock: VirtualClock | None = None):
        self.costs = cost_model if cost_model is not None else CostModel()
        self.clock = clock if clock is not None else VirtualClock()
        self.traces: list[RequestTrace] = []
        #: The observability bundle of this world: tracer + metrics +
        #: recovery log.  Span timestamps come from :meth:`peek_now` — a
        #: pure read — so tracing can never move the virtual clock.
        self.obs = Observability(self.peek_now)
        #: Legacy diagnostic counters; the dict *is* the metrics
        #: registry's counter store, so both views stay in sync.
        self.counters: dict[str, float] = self.obs.metrics.counters
        self._open_requests: list[RequestTrace] = []
        #: When False, ``charge`` records segments but does not advance the
        #: clock.  Multi-stream experiments set this so elapsed time comes
        #: from the queueing simulator instead of serial accumulation.
        self.advance_clock: bool = True
        # Pending batched charge:
        # (resource, note, accumulated seconds, component hint).
        # The hint is captured when the batch *starts* (first-hint-wins on
        # merge) so flushing later still attributes the work to whatever
        # activity opened it — without ever changing flush boundaries.
        self._pending: tuple[str, str, float, str | None] | None = None
        #: Latency-ledger component hint (see :meth:`attribute_to`):
        #: overrides charge classification while set.  Pure annotation —
        #: it never affects charging, so it exists whether or not the
        #: ledger is enabled.
        self._component_hint: str | None = None
        #: The world's request latency ledger when enabled, else None —
        #: one attribute read decides the hot path's extra cost.
        latency = self.obs.latency
        self._latency = latency if latency.enabled else None
        self._recorders: list[list[Segment]] = []
        #: Executor diagnostics (batches per operator, fast-path counts).
        #: Kept out of ``counters`` so virtual-output equivalence checks
        #: comparing counters are not perturbed by host-side bookkeeping.
        self.executor_stats: dict[str, int] = {}
        #: Row-lock read probe (``lock_granularity="row"`` only): when the
        #: engine runs a predicate read inside a transaction it installs a
        #: callable ``probe(table, rid, row_or_None)`` here; executor scan
        #: nodes invoke it per produced row so reads take row S locks
        #: under the table IS lock.  None (always, under the default
        #: table granularity) costs one attribute read per row path.
        self.lock_probe = None
        # Memoized "charge.<resource>" metric names (host-only: avoids an
        # f-string per charge).
        self._charge_metric_names: dict[str, str] = {}
        # Overlap window state (pipelined result delivery): while a
        # window is open, charges are recorded (recorders + metrics) but
        # neither advance the clock nor land in the open request trace.
        self._overlap_saved_advance: bool | None = None
        self._suppress_trace = False

    # -- charging -----------------------------------------------------------

    def charge(self, resource: str, seconds: float, note: str = "") -> None:
        """Charge ``seconds`` of use of ``resource`` to the current request."""
        if self._pending is not None:
            self._flush_pending()
        if resource not in _RESOURCE_SET:
            raise ValueError(f"unknown resource {resource!r}")
        if seconds <= 0:
            if seconds < 0:
                raise ValueError("cannot charge negative time")
            return
        if self.advance_clock:
            self.clock.advance(seconds)
        obs = self.obs
        if obs.enabled:
            metric = self._charge_metric_names.get(resource)
            if metric is None:
                metric = f"charge.{resource}"
                self._charge_metric_names[resource] = metric
            obs.metrics.observe(metric, seconds)
        segment = Segment(resource, seconds, note)
        open_requests = self._open_requests
        if open_requests and not self._suppress_trace:
            open_requests[-1].segments.append(segment)
        for sink in self._recorders:
            sink.append(segment)
        latency = self._latency
        if latency is not None:
            entry = latency.current
            if entry is not None:
                entry.add(resource, seconds, note, self._suppress_trace,
                          self._component_hint)

    def charge_batched(self, resource: str, seconds: float,
                       note: str = "") -> None:
        """Accumulate a hot-path charge, flushed as one ``charge`` later.

        Batching changes only the *granularity* of segments, never the
        total, so it is safe only when the serial clock is authoritative.
        Multi-stream experiments (``advance_clock`` False) replay traces
        through the queueing simulator, where segment boundaries determine
        how streams interleave — there we fall through to per-call
        ``charge`` so recorded traces are identical to the unbatched ones.
        """
        if not self.advance_clock:
            self.charge(resource, seconds, note)
            return
        if self._pending is not None:
            p_resource, p_note, p_seconds, p_hint = self._pending
            if p_resource == resource and p_note == note:
                self._pending = (resource, note, p_seconds + seconds,
                                 p_hint)
                return
            self._flush_pending()
        self._pending = (resource, note, seconds, self._component_hint)

    def charge_rows(self, resource: str, per_row: float, n: int,
                    note: str = "") -> None:
        """Charge ``per_row`` seconds ``n`` times, as one batched update.

        Equivalent to ``n`` calls to :meth:`charge_batched` with the same
        arguments — including the floating-point result.  Repeated addition
        is not multiplication in IEEE 754, and the bit-identical contract of
        the batch executor requires reproducing the exact left-fold the
        row-at-a-time path performs, so this loops rather than multiplies.
        """
        if n <= 0 or per_row <= 0:
            return
        if not self.advance_clock:
            # Multi-stream mode: segment boundaries feed the queueing
            # simulator, so emit per-row segments exactly as before.
            for _ in range(n):
                self.charge(resource, per_row, note)
            return
        if self._pending is not None:
            p_resource, p_note, total, hint = self._pending
            if p_resource != resource or p_note != note:
                self._flush_pending()
                total = 0.0
                hint = self._component_hint
        else:
            total = 0.0
            hint = self._component_hint
        for _ in range(n):
            total += per_row
        self._pending = (resource, note, total, hint)

    def charge_run_list(self, resource: str, runs, note: str = "") -> None:
        """Charge a sequence of ``(per_row, count)`` runs, fold-preserving.

        The batch executor defers per-row charges and replays them here in
        the exact order the row-at-a-time engine would have issued them;
        each run expands to ``count`` individual additions into the
        pending accumulator (see :meth:`charge_rows` for why).
        """
        if not runs:
            return
        if not self.advance_clock:
            for per_row, n in runs:
                if per_row > 0:
                    for _ in range(n):
                        self.charge(resource, per_row, note)
            return
        if self._pending is not None:
            p_resource, p_note, total, hint = self._pending
            if p_resource != resource or p_note != note:
                self._flush_pending()
                total = 0.0
                hint = self._component_hint
        else:
            total = 0.0
            hint = self._component_hint
        for per_row, n in runs:
            if n == 1:
                total += per_row
            else:
                for _ in range(n):
                    total += per_row
        self._pending = (resource, note, total, hint)

    def _flush_pending(self) -> None:
        """Emit the accumulated batched charge as one real segment.

        The stored component hint is restored around the flush so a
        batch opened under :meth:`attribute_to` keeps its attribution
        even when the flush point falls outside the context.
        """
        if self._pending is None:
            return
        resource, note, seconds, hint = self._pending
        self._pending = None
        if hint is self._component_hint:
            self.charge(resource, seconds, note)
            return
        saved = self._component_hint
        self._component_hint = hint
        try:
            self.charge(resource, seconds, note)
        finally:
            self._component_hint = saved

    # -- segment recording (metadata-probe replay support) ------------------

    def push_recorder(self) -> list[Segment]:
        """Start teeing every charged segment into a fresh list."""
        self._flush_pending()
        sink: list[Segment] = []
        self._recorders.append(sink)
        return sink

    def pop_recorder(self, sink: list[Segment]) -> list[Segment]:
        """Stop recording into ``sink`` (must be the innermost recorder)."""
        self._flush_pending()
        if not self._recorders or self._recorders[-1] is not sink:
            raise ValueError("recorders must be popped innermost-first")
        self._recorders.pop()
        return sink

    def replay_segments(self, segments: list[Segment]) -> None:
        """Re-charge a recorded segment sequence verbatim."""
        for seg in segments:
            self.charge(seg.resource, seg.seconds, seg.note)

    # -- overlap windows (pipelined result delivery) -------------------------

    def begin_overlap(self) -> list[Segment]:
        """Open an overlap window: subsequent charges are *recorded but
        not clocked*.

        Used for requests whose service overlaps client compute
        (fetch-ahead, pipelined persist loads): every charge inside the
        window still reaches the metrics registry and any recorder
        sinks — it is real resource usage — but the serial clock stays
        put and the open request trace stays client-perspective (the
        caller charges the *unoverlapped* remainder at its sync point).
        Windows do not nest.
        """
        if self._suppress_trace:
            raise ValueError("overlap windows do not nest")
        sink = self.push_recorder()
        self._overlap_saved_advance = self.advance_clock
        self.advance_clock = False
        self._suppress_trace = True
        return sink

    def end_overlap(self, sink: list[Segment]) -> float:
        """Close the overlap window; returns its total recorded seconds
        (the request's virtual service time)."""
        self._flush_pending()  # still suppressed: lands in the sink
        self.pop_recorder(sink)
        self.advance_clock = self._overlap_saved_advance
        self._overlap_saved_advance = None
        self._suppress_trace = False
        return sum(segment.seconds for segment in sink)

    def count(self, counter: str, amount: float = 1.0) -> None:
        """Increment a named diagnostic counter (a registry counter)."""
        self.obs.metrics.count(counter, amount)

    # -- latency ledger -------------------------------------------------------

    def enable_latency_ledger(self):
        """Turn the request latency ledger on for this world."""
        ledger = self.obs.latency
        ledger.enabled = True
        self._latency = ledger
        return ledger

    class _AttributionContext:
        __slots__ = ("_meter", "_component", "_saved")

        def __init__(self, meter: "Meter", component: str):
            self._meter = meter
            self._component = component
            self._saved: str | None = None

        def __enter__(self) -> None:
            self._saved = self._meter._component_hint
            self._meter._component_hint = self._component

        def __exit__(self, exc_type, exc, tb) -> None:
            self._meter._component_hint = self._saved

    def attribute_to(self, component: str) -> "Meter._AttributionContext":
        """Context manager: ledger entries attribute charges made inside
        to ``component`` instead of their (resource, note) default.

        Pure annotation — no charge, no flush — so it is always safe on
        the bit-identity contract and is a no-op while the ledger is
        disabled.  Used for work that borrows another activity's charge
        notes (a checkpoint piggybacked on a commit flushes ``page io``
        and forces ``log force`` exactly like ordinary execution).
        """
        return Meter._AttributionContext(self, component)

    def latency_open(self, kind: str):
        """Open a ledger entry for one protocol exchange (None when the
        ledger is disabled).  Flushes the pending batch first — the
        exchange's first charge would flush it anyway, so the flush
        point (and therefore the clock arithmetic) is unchanged."""
        latency = self._latency
        if latency is None:
            return None
        self._flush_pending()
        return latency.open(kind, start=self.peek_now(),
                            clocked=self.advance_clock)

    def latency_close(self, entry, wasted: bool = False) -> None:
        """Finalize a ledger entry (no-op on None / double close)."""
        latency = self._latency
        if latency is None or entry is None:
            return
        self._flush_pending()
        latency.close(entry, end=self.peek_now(), wasted=wasted)

    def latency_detach(self, entry) -> None:
        """Keep ``entry`` open but stop charging into it (the request
        went in flight; its stall is realized later)."""
        if self._latency is not None and entry is not None:
            self._latency.detach(entry)

    def latency_resume(self, entry) -> None:
        """Make a detached entry current again so its realized stall
        lands in it."""
        if self._latency is not None and entry is not None:
            self._latency.resume(entry)

    def latency_attribute(self, entry, component: str,
                          seconds: float) -> None:
        """Record clock time that bypassed :meth:`charge` (a failed
        overlapped exchange realizes its recorded seconds via a raw
        clock advance) into ``entry`` under ``component``."""
        if self._latency is not None and entry is not None \
                and seconds > 0:
            entry.add_attributed(component, seconds)

    # -- request bracketing ---------------------------------------------------

    def begin_request(self, label: str) -> RequestTrace:
        """Open a request trace; nested requests attach to the innermost."""
        self._flush_pending()
        trace = RequestTrace(label=label)
        self._open_requests.append(trace)
        return trace

    def end_request(self, trace: RequestTrace) -> RequestTrace:
        """Close ``trace`` and append it to the recorded traces."""
        self._flush_pending()
        if not self._open_requests or self._open_requests[-1] is not trace:
            raise ValueError("request traces must be closed innermost-first")
        self._open_requests.pop()
        if self._open_requests:
            # Nested request: fold its segments into the enclosing trace so
            # the client-visible request carries the full cost.  Only
            # top-level traces are recorded, so nothing is double counted.
            self._open_requests[-1].segments.extend(trace.segments)
        else:
            self.traces.append(trace)
        return trace

    class _RequestContext:
        def __init__(self, meter: "Meter", label: str):
            self._meter = meter
            self._label = label
            self.trace: RequestTrace | None = None

        def __enter__(self) -> RequestTrace:
            self.trace = self._meter.begin_request(self._label)
            return self.trace

        def __exit__(self, exc_type, exc, tb) -> None:
            assert self.trace is not None
            self._meter.end_request(self.trace)

    def request(self, label: str) -> "Meter._RequestContext":
        """Context manager bracketing one client-visible request."""
        return Meter._RequestContext(self, label)

    # -- reading -----------------------------------------------------------

    @property
    def now(self) -> float:
        self._flush_pending()
        return self.clock.now

    def peek_now(self) -> float:
        """Current virtual time *without* flushing the pending batched
        charge — a pure read.  Instrumentation (span timestamps,
        recovery-phase bookkeeping) uses this so observation never
        perturbs segment granularity, let alone the clock itself."""
        pending = self._pending
        if pending is not None:
            return self.clock.now + pending[2]
        return self.clock.now

    def reset_traces(self) -> None:
        """Drop recorded traces and counters (clock keeps its value)."""
        self._flush_pending()
        self.traces.clear()
        self.counters.clear()

    def seconds_on(self, resource: str) -> float:
        """Total recorded seconds on ``resource`` across all closed traces."""
        self._flush_pending()
        return sum(t.seconds_on(resource) for t in self.traces)

"""Virtual-time substrate.

The paper measured wall-clock time with the Pentium cycle counter on real
hardware.  We replace that with *virtual seconds*: every component of the
reproduction (storage engine, network, ODBC driver, Phoenix) charges the
real work it performs (pages read, tuples processed, bytes shipped, round
trips made) against a calibrated :class:`~repro.sim.costs.CostModel`.

* :class:`~repro.sim.clock.VirtualClock` — the monotonic virtual clock.
* :class:`~repro.sim.meter.Meter` — charges costs, advances the clock, and
  records per-request resource traces.
* :class:`~repro.sim.costs.CostModel` — the calibrated constants.
* :class:`~repro.sim.queueing.QueueingSimulator` — replays recorded traces
  from multiple concurrent streams against shared server resources to model
  contention (used by the TPC-H throughput test and TPC-C experiments).
"""

from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel
from repro.sim.meter import Meter, RequestTrace, Segment
from repro.sim.queueing import QueueingSimulator, StreamResult

__all__ = [
    "VirtualClock",
    "CostModel",
    "Meter",
    "RequestTrace",
    "Segment",
    "QueueingSimulator",
    "StreamResult",
]

"""Multi-stream contention model.

Single-stream experiments run serially against the virtual clock.  The
TPC-H throughput test (two concurrent query streams plus a refresh stream)
and the TPC-C experiments (32 emulated users) need *contention*: streams
share the server's CPU, disk and the network, and throughput is set by the
bottleneck resource (the paper's TPC-C server is disk-limited at 100 % disk
utilization).

We model this by replaying per-request :class:`~repro.sim.meter.RequestTrace`
objects — recorded during a serial execution — through a queueing
simulator.  Shared resources are single-server FIFO queues; per-stream
resources (client CPU) never queue.  This decouples *what work a request
does* (measured by actually executing it) from *how concurrent requests
interleave* (modeled here), which keeps the engine single-threaded and
deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.sim.costs import SHARED_RESOURCES
from repro.sim.meter import RequestTrace


@dataclass
class CompletedRequest:
    """One request completion observed by the simulator."""

    stream_id: int
    label: str
    start_time: float
    finish_time: float

    @property
    def latency(self) -> float:
        return self.finish_time - self.start_time


@dataclass
class StreamResult:
    """Per-stream outcome of a queueing run."""

    stream_id: int
    finish_time: float
    completions: list[CompletedRequest] = field(default_factory=list)


@dataclass
class QueueingResult:
    """Aggregate outcome of a queueing run."""

    elapsed_seconds: float
    streams: list[StreamResult]
    busy_seconds: dict[str, float]

    def utilization(self, resource: str) -> float:
        """Fraction of elapsed time ``resource`` was busy (0 if no time passed)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return min(1.0, self.busy_seconds.get(resource, 0.0) / self.elapsed_seconds)

    def completions_in(self, start: float, end: float,
                       label_prefix: str | None = None) -> int:
        """Count request completions inside a measurement window."""
        count = 0
        for stream in self.streams:
            for done in stream.completions:
                if not start <= done.finish_time <= end:
                    continue
                if label_prefix is not None and not done.label.startswith(label_prefix):
                    continue
                count += 1
        return count


class QueueingSimulator:
    """Replays recorded request traces with shared-resource contention."""

    def __init__(self, shared_resources: tuple[str, ...] = SHARED_RESOURCES):
        self._shared = set(shared_resources)

    def run(self, streams: list[list[RequestTrace]],
            start_times: list[float] | None = None) -> QueueingResult:
        """Run every stream's requests in order, interleaved by readiness.

        ``streams[i]`` is the ordered request list of stream ``i``;
        ``start_times[i]`` (default 0) is when stream ``i`` begins.
        Each stream is a closed loop: it issues its next request the moment
        the previous one completes (zero think time, as in the paper's
        TPC-C setup).
        """
        if start_times is None:
            start_times = [0.0] * len(streams)
        if len(start_times) != len(streams):
            raise ValueError("start_times must match streams")

        resource_free: dict[str, float] = {}
        busy: dict[str, float] = {}
        results = [StreamResult(stream_id=i, finish_time=start_times[i])
                   for i in range(len(streams))]

        # Heap of (ready_time, stream_id, request_index, segment_index,
        # request_start_time).  Tie-break on stream id for determinism.
        heap: list[tuple[float, int, int, int, float]] = []
        for i, requests in enumerate(streams):
            if requests:
                heapq.heappush(heap, (start_times[i], i, 0, 0, start_times[i]))

        while heap:
            ready, sid, req_idx, seg_idx, req_start = heapq.heappop(heap)
            trace = streams[sid][req_idx]
            if seg_idx >= len(trace.segments):
                # Empty or exhausted request: complete it immediately.
                finish = ready
                self._complete(results[sid], trace, req_start, finish)
                self._advance_stream(heap, streams, sid, req_idx, finish)
                continue

            segment = trace.segments[seg_idx]
            if segment.resource in self._shared:
                start = max(ready, resource_free.get(segment.resource, 0.0))
                resource_free[segment.resource] = start + segment.seconds
            else:
                start = ready
            end = start + segment.seconds
            busy[segment.resource] = busy.get(segment.resource, 0.0) + segment.seconds

            if seg_idx + 1 < len(trace.segments):
                heapq.heappush(heap, (end, sid, req_idx, seg_idx + 1, req_start))
            else:
                self._complete(results[sid], trace, req_start, end)
                self._advance_stream(heap, streams, sid, req_idx, end)

        elapsed = max((r.finish_time for r in results), default=0.0)
        return QueueingResult(elapsed_seconds=elapsed, streams=results,
                              busy_seconds=busy)

    @staticmethod
    def _complete(result: StreamResult, trace: RequestTrace,
                  start: float, finish: float) -> None:
        result.completions.append(CompletedRequest(
            stream_id=result.stream_id, label=trace.label,
            start_time=start, finish_time=finish))
        result.finish_time = max(result.finish_time, finish)

    @staticmethod
    def _advance_stream(heap, streams, sid: int, req_idx: int,
                        now: float) -> None:
        if req_idx + 1 < len(streams[sid]):
            heapq.heappush(heap, (now, sid, req_idx + 1, 0, now))

"""Calibrated cost model.

Every constant is in (virtual) seconds or bytes.  Values are calibrated to
the scalars the paper publishes for its 400 MHz Pentium II / SQL Server 7.0
/ 100 Mbit LAN testbed:

* Phoenix request parse: 0.00023 s, metadata access: 0.00062 s, persistent
  table creation: 0.321 s (§3.5).
* Per-tuple client fetch: 0.00380 s native, 0.00397 s from a persisted
  table (§3.5).
* Virtual-session recovery: 0.37 s (§3.4) — emerges from one reconnect plus
  replaying connection options over individual round trips.
* Native response time saturates once ~512 × 150 B ≈ 75 KB of result rows
  fill the network output buffer (§3.5, Table 3 discussion).

``work_amplification`` compensates for running the workloads at laptop
scale: it multiplies the cost of *base-table* work (scans, joins, DML and
their logging) so that a scale-0.01 TPC-H run reports scale-1.0-magnitude
virtual times.  It deliberately does **not** apply to Phoenix's own
overheads (table creation, result materialization, round trips), so
reported overhead ratios are, if anything, pessimistic for Phoenix.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# Resource names used in meter traces.  Shared server resources contend in
# the queueing simulator; CLIENT_CPU is per-stream.
CLIENT_CPU = "client_cpu"
SERVER_CPU = "server_cpu"
SERVER_DISK = "server_disk"
NETWORK = "network"

ALL_RESOURCES = (CLIENT_CPU, SERVER_CPU, SERVER_DISK, NETWORK)
SHARED_RESOURCES = (SERVER_CPU, SERVER_DISK, NETWORK)


@dataclass
class CostModel:
    """Calibrated virtual-time constants for the whole system."""

    # -- client side -------------------------------------------------------
    #: Phoenix's one-pass request classification (paper: 0.00023 s).
    client_parse_seconds: float = 0.00023
    #: Reading result metadata from a WHERE 0=1 reply (paper: 0.00062 s).
    metadata_read_seconds: float = 0.00062
    #: Per-SQLFetch driver overhead when rows are in the client buffer
    #: (paper: 0.00380 s per tuple, native).
    client_fetch_seconds: float = 0.00380
    #: Extra per-fetch cost when the row comes from a persisted table
    #: (paper: 0.00397 - 0.00380 s).
    persisted_fetch_extra_seconds: float = 0.00017
    #: Per-row cost of one block-cursor bulk read into the client cache.
    cache_block_read_per_row_seconds: float = 0.0002
    #: Client-side CPU to serve one fetch straight from the client cache.
    cache_fetch_seconds: float = 0.0009

    # -- network / result delivery -------------------------------------------
    network_rtt_seconds: float = 0.0005
    network_bytes_per_second: float = 12.5e6  # 100 Mbit/s
    network_message_overhead_seconds: float = 0.0002
    #: Result rows are packed into wire packets of this size; each packet
    #: costs one message overhead plus its transfer time.
    packet_bytes: int = 4096
    #: Server CPU to evaluate/format one *byte* of a pipelined (live
    #: query) result row before it enters the output buffer.  Width-aware:
    #: Table 3's 150 B LINEITEM rows cost ~2.4 ms each (matching the ~3 ms
    #: per-row slope the paper observed between 32 and 512 tuples), while
    #: narrow rows (Q16's ~40 B) stay under 1 ms.
    cpu_per_result_byte_seconds: float = 1.6e-5
    #: Shipping one already-materialized page of rows (Phoenix streams the
    #: persisted table page-at-a-time without re-running the query:
    #: "Phoenix/ODBC simply streams tuples from the table").
    page_send_seconds: float = 0.004
    #: Server network output buffer: once full, the producing scan suspends
    #: (paper observed saturation at 512 x 150 B = 75 KB).
    output_buffer_bytes: int = 75 * 1024
    #: How many row-bytes one driver fetch pulls across the wire.  The
    #: client holds at most this much un-consumed result data, so a crash
    #: loses everything beyond it — which is why Phoenix must reposition
    #: within recovered result sets (Figures 3/4) instead of relying on
    #: client-side buffering.
    client_fetch_batch_bytes: int = 512

    # -- pipelined result delivery (all default-off = seed-identical) --------
    #: Speculative ``FetchRequest``s the driver keeps in flight after
    #: delivering a batch.  While a prefetched batch is in flight, the
    #: server's production and the response downlink overlap the client's
    #: per-row fetch CPU: the in-flight request's virtual completion time
    #: is recorded at issue (``Meter.peek_now`` — a pure read), and
    #: consumption charges only ``max(0, completion - now)``.  0 disables
    #: fetch-ahead entirely, which keeps every historical trace
    #: bit-identical (same convention as ``async_commit_window_seconds``).
    fetch_ahead_depth: int = 0
    #: Cap on the adaptive wire batch.  When larger than
    #: ``client_fetch_batch_bytes``, each successive fetch of one open
    #: result doubles the rowset a ``FetchResponse`` carries (the consumer
    #: has demonstrably drained everything shipped so far) up to this many
    #: row-bytes.  0 keeps the fixed seed batching.
    fetch_batch_max_bytes: int = 0
    #: Cap on the adaptive server output buffer.  When larger than
    #: ``output_buffer_bytes``, a ``ServerResultSet`` whose buffer the
    #: consumer keeps draining doubles its refill target up to this cap —
    #: streamable Phoenix re-opens especially benefit, since their pages
    #: are forwarded without re-running a query.  0 keeps the fixed
    #: suspended-scan buffer of the paper's §3.4.
    output_buffer_max_bytes: int = 0
    #: Overlap the Phoenix load step's server-local ``INSERT INTO T
    #: <query>`` move with the round trips the load chain issues around
    #: it (status record, commit, procedure drop): requests are pipelined
    #: — uplinks charged as sent, server work and downlinks realized at
    #: the next synchronization point.  False serializes every round trip
    #: (seed behaviour).
    persist_pipeline: bool = False

    # -- shared result cache (all default-off = seed-identical) --------------
    #: Capacity (entries) of the driver-manager-level result cache shared
    #: across all virtual sessions.  Entries are keyed by the normalized
    #: statement text (parameters arrive pre-inlined) and stamped with the
    #: per-table DML version of every table the plan reads; a commit that
    #: touches a stamped table invalidates the entry transactionally.  A
    #: hit serves rows from client memory with *zero* protocol requests.
    #: 0 disables the cache entirely — no version counters are bumped, no
    #: response fields are populated, and every historical trace stays
    #: bit-identical (same convention as ``async_commit_window_seconds``).
    result_cache_entries: int = 0
    #: Largest result (in rows) the shared cache will retain.  Bigger
    #: results fall through to the normal execute/fetch path.
    result_cache_max_rows: int = 200
    #: Client CPU to probe the shared cache and serve one hit (key
    #: normalization + version-stamp validation against the client's
    #: committed-version mirror).
    result_cache_probe_seconds: float = 0.0004

    # -- concurrency control (default = seed-identical table locking) --------
    #: Locking granularity.  ``"table"`` keeps the seed lock manager's
    #: behaviour exactly: S/X locks at table granularity with a no-wait
    #: policy (conflicts raise ``DeadlockError`` immediately).  ``"row"``
    #: enables the hierarchical lock manager: intention modes (IS/IX) at
    #: table granularity plus S/X row locks keyed by primary key, strict
    #: 2PL held to commit/abort, bounded waiting in virtual time
    #: (conflicts raise ``LockWaitError`` so the scheduler can park the
    #: session) and wait-for-graph deadlock detection that aborts the
    #: youngest transaction in the cycle.  The default keeps every
    #: historical trace bit-identical (same convention as
    #: ``async_commit_window_seconds``).
    lock_granularity: str = "table"
    #: Row locks one transaction may hold on one table before the lock
    #: manager escalates them to a single table-granularity S/X lock.
    #: Only consulted when ``lock_granularity`` is ``"row"``.
    lock_escalation_threshold: int = 64

    # -- query optimizer (default = seed-identical heuristic planning) -------
    #: Plan selection strategy.  ``"heuristic"`` keeps the seed planner:
    #: FROM-order left-deep joins, the fixed HashJoin-vs-NLJ rule, and
    #: Sort+Limit for TOP N.  ``"cost"`` enables the statistics-driven
    #: optimizer: cardinality estimation from ANALYZE statistics, join
    #: reordering, cost-based join algorithm and build-side selection,
    #: and TopNHeapSort pushdown.  The default keeps every historical
    #: trace bit-identical (same convention as
    #: ``async_commit_window_seconds``).
    optimizer_mode: str = "heuristic"
    #: Equi-depth histogram buckets ANALYZE collects per column.
    analyze_histogram_buckets: int = 16
    #: Per-tuple server CPU charged by ANALYZE while scanning a table to
    #: build statistics (sketch maintenance on top of the heap scan).
    cpu_per_tuple_analyze: float = 4e-6

    # -- server CPU --------------------------------------------------------
    cpu_per_tuple_scan: float = 8e-6
    cpu_per_tuple_join: float = 1.2e-5
    cpu_per_tuple_agg: float = 6e-6
    cpu_per_tuple_sort: float = 2e-6  # multiplied by log2(n) in the executor
    cpu_per_tuple_insert: float = 2e-5
    cpu_per_tuple_delete: float = 2e-5
    cpu_per_tuple_update: float = 2.5e-5
    cpu_per_tuple_index_lookup: float = 1.5e-5
    #: Server-side parse + plan of one statement.
    cpu_per_statement_seconds: float = 0.002
    #: Creating a stored procedure: a persistent catalog object, priced
    #: like a (smaller) sibling of table creation.  Together with the
    #: create-table step this makes up Phoenix's fixed ~0.9 s per
    #: persisted result (Table 3's small-N plateau).
    cpu_create_procedure_seconds: float = 0.2

    # -- disk --------------------------------------------------------------
    page_size_bytes: int = 8192
    disk_page_read_seconds: float = 0.0025
    disk_page_write_seconds: float = 0.0030
    #: Creating a persistent table: catalog insert, extent allocation and
    #: a forced log write (paper measured 0.321 s total for the step; we
    #: split it into a CPU part and a disk part so multi-stream
    #: experiments contend on the right resource).
    create_table_cpu_seconds: float = 0.221
    create_table_disk_seconds: float = 0.100

    @property
    def create_table_seconds(self) -> float:
        return self.create_table_cpu_seconds + self.create_table_disk_seconds

    # -- write-ahead log ---------------------------------------------------
    log_bytes_per_second: float = 4.0e6
    log_force_seconds: float = 0.005
    log_record_overhead_bytes: int = 32
    #: Asynchronous-commit window: a commit arriving within this many
    #: virtual seconds of the last synchronous log force is acknowledged
    #: *without* forcing — its records stay in the volatile tail until
    #: the next real force.  This trades bounded durability (a crash
    #: inside the window loses acked commits) for fewer log forces; see
    #: ``TransactionManager.commit``.  0.0 disables deferral, which
    #: keeps every historical trace bit-identical and is required by
    #: crash-transparency suites.
    async_commit_window_seconds: float = 0.0

    # -- fuzzy checkpoints / parallel redo (default-off = seed-identical) ----
    #: Virtual-time cadence of *fuzzy* checkpoints: after each commit the
    #: engine takes a non-blocking Begin/End checkpoint if this many
    #: virtual seconds have passed since the last one.  No pages are
    #: flushed at checkpoint time (a background flusher writes out pages
    #: dirtied before the *previous* checkpoint, advancing the dirty-page
    #: table's minimum recLSN).  0.0 disables the cadence entirely, which
    #: keeps every historical trace bit-identical (same convention as
    #: ``async_commit_window_seconds``).
    checkpoint_interval_seconds: float = 0.0
    #: Restart-recovery redo parallelism: when >= 1, redo is replayed in
    #: per-table partitions over this many simulated workers — records
    #: are still *applied* serially in LSN order (worker count can never
    #: change recovered contents), but the charged virtual time becomes
    #: serial-log-read + the makespan of the per-partition apply work
    #: (DDL acts as a serial barrier).  0 keeps the seed's serial redo
    #: charging, bit-identical.
    redo_workers: int = 0
    #: Let fuzzy checkpoints truncate (archive) the log prefix below
    #: min(dirty-page recLSNs, active transactions' first LSNs, the
    #: checkpoint's own Begin LSN).  Reads below the boundary raise
    #: ``LogTruncatedError``.  False keeps the log append-only (seed).
    checkpoint_truncate_log: bool = False

    # -- connections / sessions --------------------------------------------
    connect_seconds: float = 0.25
    #: Re-installing one connection option during recovery (one round trip).
    option_reset_seconds: float = 0.012
    ping_seconds: float = 0.002
    #: Opening (compiling) a statement server-side via the WHERE 0=1 trick.
    metadata_roundtrip_server_seconds: float = 0.001

    # -- scale compensation -------------------------------------------------
    #: Multiplier on base-table work so laptop-scale data reports
    #: paper-scale virtual times.  1.0 means "no compensation".
    work_amplification: float = 1.0

    # free-form tags for experiment bookkeeping
    tags: dict = field(default_factory=dict)

    def transfer_seconds(self, num_bytes: int) -> float:
        """Wire time for ``num_bytes`` plus one message overhead."""
        if num_bytes < 0:
            raise ValueError("cannot transfer a negative number of bytes")
        return (
            self.network_message_overhead_seconds
            + num_bytes / self.network_bytes_per_second
        )

    def log_write_seconds(self, payload_bytes: int) -> float:
        """Time to append one log record with ``payload_bytes`` of payload."""
        total = payload_bytes + self.log_record_overhead_bytes
        return total / self.log_bytes_per_second

    def sort_seconds(self, num_tuples: int) -> float:
        """CPU time to sort ``num_tuples`` (n log n)."""
        if num_tuples <= 1:
            return 0.0
        import math

        return self.cpu_per_tuple_sort * num_tuples * math.log2(num_tuples)

    def topn_seconds(self, num_tuples: int, limit: int) -> float:
        """CPU time for a bounded-heap top-N over ``num_tuples``
        (n log k instead of the full sort's n log n)."""
        if num_tuples <= 1 or limit <= 0:
            return 0.0
        import math

        k = min(num_tuples, max(2, limit))
        return self.cpu_per_tuple_sort * num_tuples * math.log2(k)

    def rows_per_page(self, row_width_bytes: int) -> int:
        """How many rows of the given width fit on one page (at least 1)."""
        width = max(1, row_width_bytes)
        return max(1, self.page_size_bytes // width)

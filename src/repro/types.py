"""SQL value types shared by the catalog, the SQL frontend and the drivers.

Values are plain Python objects at runtime (int, float, str,
``datetime.date``, ``None``); this module defines the *declared* types,
coercion into them, and per-row byte-width estimation used by the page
layout and the network cost model.
"""

from __future__ import annotations

import datetime
import enum
import functools
from dataclasses import dataclass

from repro.errors import TypeMismatchError


class SqlType(enum.Enum):
    """Declared SQL column types supported by the engine."""

    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    FLOAT = "FLOAT"
    DECIMAL = "DECIMAL"
    VARCHAR = "VARCHAR"
    CHAR = "CHAR"
    DATE = "DATE"

    @property
    def is_numeric(self) -> bool:
        return self in (SqlType.INTEGER, SqlType.BIGINT,
                        SqlType.FLOAT, SqlType.DECIMAL)

    @property
    def is_text(self) -> bool:
        return self in (SqlType.VARCHAR, SqlType.CHAR)


_FIXED_WIDTHS = {
    SqlType.INTEGER: 4,
    SqlType.BIGINT: 8,
    SqlType.FLOAT: 8,
    SqlType.DECIMAL: 8,
    SqlType.DATE: 4,
}


@dataclass(frozen=True)
class Column:
    """One column of a table or result set."""

    name: str
    sql_type: SqlType
    length: int = 0  # declared length for CHAR/VARCHAR
    nullable: bool = True

    # cached_property writes straight into the instance __dict__, which
    # sidesteps the frozen-dataclass setattr guard — the width of an
    # immutable column never changes, so computing it once is safe.
    @functools.cached_property
    def width_bytes(self) -> int:
        """Estimated stored width of one value of this column."""
        if self.sql_type in _FIXED_WIDTHS:
            return _FIXED_WIDTHS[self.sql_type]
        # Text: assume declared length for CHAR, half for VARCHAR.
        if self.sql_type is SqlType.CHAR:
            return max(1, self.length)
        return max(1, self.length // 2 or 1)

    def describe(self) -> str:
        if self.sql_type.is_text:
            return f"{self.name} {self.sql_type.value}({self.length})"
        return f"{self.name} {self.sql_type.value}"


def row_width_bytes(columns: list[Column]) -> int:
    """Estimated byte width of one row with the given columns."""
    return sum(c.width_bytes for c in columns) or 1


def coerce(value, sql_type: SqlType):
    """Coerce a Python value to the runtime representation of ``sql_type``.

    ``None`` passes through (SQL NULL).  Raises
    :class:`~repro.errors.TypeMismatchError` on impossible coercions.
    """
    if value is None:
        return None
    # Exact-type fast paths for values already in runtime form (the
    # overwhelmingly common case on the insert path).  ``type(True) is
    # int`` is False, so bools still take the ladder below.
    t = type(value)
    if t is int:
        if sql_type is SqlType.INTEGER or sql_type is SqlType.BIGINT:
            return value
    elif t is str:
        if sql_type is SqlType.VARCHAR or sql_type is SqlType.CHAR:
            return value
    elif t is float:
        if sql_type is SqlType.FLOAT or sql_type is SqlType.DECIMAL:
            return value
    try:
        if sql_type in (SqlType.INTEGER, SqlType.BIGINT):
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, (int, float)):
                return int(value)
            if isinstance(value, str):
                return int(value.strip())
        elif sql_type in (SqlType.FLOAT, SqlType.DECIMAL):
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                return float(value.strip())
        elif sql_type.is_text:
            if isinstance(value, str):
                return value
            if isinstance(value, (int, float)):
                return str(value)
            if isinstance(value, datetime.date):
                return value.isoformat()
        elif sql_type is SqlType.DATE:
            if isinstance(value, datetime.date):
                return value
            if isinstance(value, str):
                return datetime.date.fromisoformat(value.strip())
    except (ValueError, TypeError) as exc:
        raise TypeMismatchError(
            f"cannot coerce {value!r} to {sql_type.value}") from exc
    raise TypeMismatchError(f"cannot coerce {value!r} to {sql_type.value}")


def coerce_column(value, column: Column):
    """Coerce a value to a column's declared type.

    CHAR values are stored as given (no blank padding): padding would
    break equality and LIKE against unpadded literals, and the *storage*
    width of a CHAR column is accounted from its declared length by the
    page layout and result-buffer math, not from the value.
    """
    return coerce(value, column.sql_type)


def value_width_bytes(value) -> int:
    """Estimated wire width of one runtime value (for transfer costs)."""
    # Exact-type fast paths first: this runs per value on every row
    # transfer and WAL record.  ``type(True) is int`` is False, so the
    # int fast path cannot misclassify bools; subclasses fall through to
    # the original isinstance ladder.
    t = type(value)
    if t is int:
        return 4 if -(2 ** 31) <= value < 2 ** 31 else 8
    if t is str:
        return max(1, len(value))
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 4 if -(2 ** 31) <= value < 2 ** 31 else 8
    if isinstance(value, float):
        return 8
    if isinstance(value, datetime.date):
        return 4
    if isinstance(value, str):
        return max(1, len(value))
    return 8


def infer_sql_type(value) -> SqlType:
    """Best-effort declared type for a literal runtime value."""
    if isinstance(value, bool):
        return SqlType.INTEGER
    if isinstance(value, int):
        return SqlType.INTEGER
    if isinstance(value, float):
        return SqlType.FLOAT
    if isinstance(value, datetime.date):
        return SqlType.DATE
    return SqlType.VARCHAR

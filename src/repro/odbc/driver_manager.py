"""The (native) ODBC Driver Manager.

The application-facing surface: allocate handles, connect, execute,
fetch, read diagnostics.  Methods return ODBC return codes
(``SQL_SUCCESS`` / ``SQL_ERROR`` / ``SQL_NO_DATA``); errors raised by the
driver are converted into diagnostics on the handle, exactly the contract
ODBC applications code against.

``PhoenixDriverManager`` (in :mod:`repro.phoenix.driver_manager`) exposes
this same surface — "the Phoenix-enhanced driver manager wraps the call
points of database vendor provided ODBC drivers in the same way as the
original driver manager" — so applications run unmodified against either.
"""

from __future__ import annotations

from repro.errors import (
    ConnectionLostError,
    ConstraintError,
    DeadlockError,
    LockWaitError,
    OdbcError,
    ReproError,
    RequestTimeoutError,
    ServerCrashedError,
    ServerDownError,
    SqlSyntaxError,
)
from repro.odbc.constants import (
    SQL_ERROR,
    SQL_NO_DATA,
    SQL_SUCCESS,
    SQLSTATE_COMM_LINK_FAILURE,
    SQLSTATE_CONNECTION_DEAD,
    SQLSTATE_CONSTRAINT,
    SQLSTATE_GENERAL_ERROR,
    SQLSTATE_LOCK_TIMEOUT,
    SQLSTATE_SERIALIZATION_FAILURE,
    SQLSTATE_SYNTAX_ERROR,
)
from repro.odbc.driver import NativeDriver
from repro.odbc.handles import (
    ConnectionHandle,
    Diagnostic,
    EnvironmentHandle,
    StatementHandle,
)


def sqlstate_for(error: Exception) -> str:
    """Map an internal exception to the SQLSTATE a driver would report."""
    if isinstance(error, (ServerDownError, ServerCrashedError,
                          RequestTimeoutError)):
        return SQLSTATE_COMM_LINK_FAILURE
    if isinstance(error, ConnectionLostError):
        return SQLSTATE_CONNECTION_DEAD
    if isinstance(error, LockWaitError):
        # Checked before DeadlockError only for clarity — the two are
        # sibling TransactionError subclasses, never related.
        return SQLSTATE_LOCK_TIMEOUT
    if isinstance(error, DeadlockError):
        return SQLSTATE_SERIALIZATION_FAILURE
    if isinstance(error, SqlSyntaxError):
        return SQLSTATE_SYNTAX_ERROR
    if isinstance(error, ConstraintError):
        return SQLSTATE_CONSTRAINT
    if isinstance(error, OdbcError):
        return error.sqlstate
    return SQLSTATE_GENERAL_ERROR


class DriverManager:
    """Routes application calls to the native driver."""

    def __init__(self, driver: NativeDriver):
        self.driver = driver

    # -- handle management ------------------------------------------------------

    def alloc_env(self) -> EnvironmentHandle:
        return EnvironmentHandle()

    def alloc_connection(self, environment: EnvironmentHandle) -> ConnectionHandle:
        return ConnectionHandle(environment)

    def alloc_statement(self, connection: ConnectionHandle) -> StatementHandle:
        return StatementHandle(connection)

    def free_statement(self, statement: StatementHandle) -> int:
        rc, _ = self._guard(statement,
                            lambda: self.driver.close_statement(statement))
        statement.freed = True
        return rc

    def get_diag(self, handle) -> list[Diagnostic]:
        return list(handle.diagnostics)

    # -- connections ----------------------------------------------------------

    def connect(self, connection: ConnectionHandle, login: str = "app",
                options: dict | None = None) -> int:
        rc, _ = self._guard(connection,
                            lambda: self.driver.connect(connection, login,
                                                        options))
        return rc

    def disconnect(self, connection: ConnectionHandle) -> int:
        rc, _ = self._guard(connection,
                            lambda: self.driver.disconnect(connection))
        return rc

    def set_connect_option(self, connection: ConnectionHandle, name: str,
                           value) -> int:
        rc, _ = self._guard(
            connection,
            lambda: self.driver.set_connection_option(connection, name,
                                                      value))
        return rc

    # -- statements ------------------------------------------------------------

    def exec_direct(self, statement: StatementHandle, sql: str,
                    params: dict | None = None) -> int:
        rc, _ = self._guard(statement,
                            lambda: self.driver.execute(statement, sql,
                                                        params))
        return rc

    # -- prepared execution (SQLPrepare / SQLBindParameter / SQLExecute) --------

    def prepare(self, statement: StatementHandle, sql: str) -> int:
        """Associate SQL text with the handle for later execution.

        Parameters are named ``@name`` markers in the text, bound with
        :meth:`bind_param` before :meth:`execute`.
        """
        statement.clear_diag()
        statement.prepared_sql = sql
        statement.bound_params = {}
        return SQL_SUCCESS

    def bind_param(self, statement: StatementHandle, name: str,
                   value) -> int:
        if statement.prepared_sql is None:
            statement.add_diag("HY010", "no statement prepared")
            return SQL_ERROR
        statement.bound_params[name.lstrip("@").lower()] = value
        return SQL_SUCCESS

    def execute(self, statement: StatementHandle) -> int:
        """Execute the prepared statement with the bound parameters."""
        if statement.prepared_sql is None:
            statement.clear_diag()
            statement.add_diag("HY010", "no statement prepared")
            return SQL_ERROR
        return self.exec_direct(statement, statement.prepared_sql,
                                dict(statement.bound_params))

    def fetch(self, statement: StatementHandle):
        """Returns ``(rc, row)``: SQL_SUCCESS + row, or SQL_NO_DATA."""
        rc, row = self._guard(statement,
                              lambda: self.driver.fetch_one(statement))
        if rc == SQL_SUCCESS and row is None:
            return SQL_NO_DATA, None
        return rc, row

    def fetch_block(self, statement: StatementHandle, max_rows: int):
        """Block-cursor read: ``(rc, rows)``; SQL_NO_DATA when empty."""
        rc, rows = self._guard(
            statement, lambda: self.driver.fetch_block(statement, max_rows))
        if rc == SQL_SUCCESS and not rows:
            return SQL_NO_DATA, []
        return rc, rows or []

    def set_stmt_attr(self, statement: StatementHandle, name: str,
                      value) -> int:
        statement.attrs[name] = value
        return SQL_SUCCESS

    def fetch_scroll(self, statement: StatementHandle, orientation: str,
                     offset: int = 0):
        """Scrollable fetch: ``(rc, row)``; SQL_NO_DATA past either end."""
        rc, row = self._guard(
            statement,
            lambda: self.driver.fetch_scroll(statement, orientation,
                                             offset))
        if rc == SQL_SUCCESS and row is None:
            return SQL_NO_DATA, None
        return rc, row

    def num_result_cols(self, statement: StatementHandle) -> int:
        if statement.result is None:
            return 0
        return len(statement.result.columns)

    def describe_col(self, statement: StatementHandle, position: int):
        """1-based column description (name, type, length)."""
        if statement.result is None:
            raise OdbcError("07005", "no result set")
        column = statement.result.columns[position - 1]
        return column.name, column.sql_type, column.length

    def row_count(self, statement: StatementHandle) -> int:
        if statement.result is None:
            return -1
        return statement.result.rowcount

    def close_cursor(self, statement: StatementHandle) -> int:
        rc, _ = self._guard(statement,
                            lambda: self.driver.close_statement(statement))
        return rc

    # -- internals -----------------------------------------------------------

    def _guard(self, handle, operation):
        """Run ``operation``; convert exceptions to rc + diagnostics."""
        handle.clear_diag()
        try:
            return SQL_SUCCESS, operation()
        except ReproError as error:
            handle.add_diag(sqlstate_for(error), str(error))
            return SQL_ERROR, None

"""ODBC handle objects and diagnostics.

Handles are plain state holders; all behaviour lives in the driver
manager (native or Phoenix).  A handle records the diagnostics of its
last operation, readable via ``DriverManager.get_diag`` — the moral
equivalent of ``SQLGetDiagRec``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.types import Column

_handle_ids = itertools.count(1)


@dataclass(slots=True)
class Diagnostic:
    """One diagnostic record (SQLSTATE + message)."""

    sqlstate: str
    message: str


class _Handle:
    def __init__(self):
        self.handle_id = next(_handle_ids)
        self.diagnostics: list[Diagnostic] = []
        self.freed = False

    def clear_diag(self) -> None:
        self.diagnostics.clear()

    def add_diag(self, sqlstate: str, message: str) -> None:
        self.diagnostics.append(Diagnostic(sqlstate, message))


class EnvironmentHandle(_Handle):
    """Top-level handle: owns connections."""

    def __init__(self):
        super().__init__()
        self.connections: list[ConnectionHandle] = []


class ConnectionHandle(_Handle):
    """One database connection as the application sees it.

    ``session_token`` is the server session this connection is bound to.
    Under Phoenix this is a *virtual* handle: Phoenix re-binds
    ``session_token`` after a crash without the application noticing.
    """

    def __init__(self, environment: EnvironmentHandle):
        super().__init__()
        self.environment = environment
        self.connected = False
        self.session_token = 0
        self.login = ""
        self.options: dict[str, object] = {}
        self.statements: list[StatementHandle] = []
        environment.connections.append(self)


@dataclass(slots=True)
class ResultState:
    """Client-side state of one open result."""

    columns: list[Column] = field(default_factory=list)
    statement_id: int = 0          # server-side handle (0 = none open)
    buffered: list[tuple] = field(default_factory=list)
    done: bool = False
    position: int = 0              # rows already delivered to the app
    rowcount: int = -1
    #: Static-cursor materialization: the whole result client-side, with
    #: a free-moving cursor (index of the row SQL_FETCH_NEXT returns).
    static_rows: list[tuple] | None = None
    cursor_index: int = 0
    #: ODBC distinguishes "on the last row" from "after the last row"
    #: (SQL_FETCH_PRIOR returns different rows from the two states).
    cursor_after_last: bool = False
    #: In-flight fetch-ahead batches (oldest first), issued speculatively
    #: by the driver when ``CostModel.fetch_ahead_depth`` > 0.  Entries
    #: are :class:`repro.odbc.driver._InFlightFetch`.  Rows here have NOT
    #: been delivered: ``position`` must not count them (crash recovery
    #: repositions to the last *delivered* row and discards these).
    prefetch: list = field(default_factory=list)


class StatementHandle(_Handle):
    """One statement as the application sees it."""

    def __init__(self, connection: ConnectionHandle):
        super().__init__()
        self.connection = connection
        self.attrs: dict[str, object] = {}
        self.result: ResultState | None = None
        self.last_sql: str = ""
        #: SQLPrepare state: the prepared text and bound parameters.
        self.prepared_sql: str | None = None
        self.bound_params: dict[str, object] = {}
        connection.statements.append(self)

    @property
    def has_open_result(self) -> bool:
        return self.result is not None

"""The native ODBC driver: protocol operations over the simulated wire.

This is the "vendor supplied ODBC driver" of the paper.  It is a thin
client: it translates driver-manager calls into protocol requests, keeps
the client-side row buffer of each open result, and *raises* transport
errors (:class:`ServerDownError`, :class:`ServerCrashedError`,
:class:`ConnectionLostError`) — it makes no attempt to recover.  Masking
those errors is Phoenix's job, one layer up.
"""

from __future__ import annotations

from repro.errors import OdbcError
from repro.server.network import SimulatedNetwork
from repro.server.protocol import (
    AdvanceRequest,
    CloseStatementRequest,
    ConnectRequest,
    DisconnectRequest,
    ExecuteRequest,
    FetchRequest,
    PingRequest,
    SetOptionRequest,
)
from repro.server.server import DatabaseServer
from repro.sim.costs import CLIENT_CPU
from repro.sim.meter import Meter
from repro.odbc.constants import SQL_ATTR_CURSOR_TYPE, SQL_CURSOR_STATIC
from repro.odbc.handles import ConnectionHandle, ResultState, StatementHandle


class NativeDriver:
    """Protocol client for one server."""

    def __init__(self, server: DatabaseServer, network: SimulatedNetwork,
                 meter: Meter):
        self.server = server
        self.network = network
        self.meter = meter
        #: Catalog generation last reported by the server (rides on every
        #: ExecuteResponse).  Client-side metadata caches key on it so any
        #: DDL observed through this driver invalidates them.
        self.last_schema_version = 0

    # -- connections ----------------------------------------------------------

    def connect(self, connection: ConnectionHandle, login: str,
                options: dict | None = None) -> None:
        options = dict(options or {})
        self.meter.charge(CLIENT_CPU, self.meter.costs.connect_seconds,
                          "connect handshake")
        response = self.network.call(
            self.server, ConnectRequest(login=login, options=options))
        connection.connected = True
        connection.session_token = response.session_token
        connection.login = login
        connection.options = options

    def disconnect(self, connection: ConnectionHandle) -> None:
        if connection.connected:
            self.network.call(self.server, DisconnectRequest(
                session_token=connection.session_token))
        connection.connected = False
        connection.session_token = 0

    def set_connection_option(self, connection: ConnectionHandle,
                              name: str, value) -> None:
        self.meter.charge(CLIENT_CPU,
                          self.meter.costs.option_reset_seconds,
                          "set option")
        self.network.call(self.server, SetOptionRequest(
            session_token=connection.session_token, name=name, value=value))
        connection.options[name] = value

    def ping(self) -> bool:
        response = self.network.call(self.server, PingRequest())
        return response.alive

    # -- statements ------------------------------------------------------------

    def execute(self, statement: StatementHandle, sql: str,
                params: dict | None = None) -> ResultState:
        connection = statement.connection
        if not connection.connected:
            raise OdbcError("08003", "connection is not open")
        response = self.network.call(self.server, ExecuteRequest(
            session_token=connection.session_token, sql=sql,
            params=dict(params or {})))
        self.last_schema_version = response.schema_version
        result = ResultState()
        if response.kind == "rows":
            result.columns = response.columns
            result.statement_id = response.statement_id
            result.buffered = list(response.rows)
            result.done = response.done
        elif response.kind == "rowcount":
            result.rowcount = response.rowcount
            result.done = True
        else:
            result.done = True
        statement.result = result
        statement.last_sql = sql
        if response.kind == "rows" and statement.attrs.get(
                SQL_ATTR_CURSOR_TYPE) == SQL_CURSOR_STATIC:
            self._materialize_static(statement, result)
        return result

    def _materialize_static(self, statement: StatementHandle,
                            result: ResultState) -> None:
        """Drain the whole result client-side for a static cursor.

        Static cursors buffer the full result at the client (one bulk
        read per wire batch), which is what lets them scroll freely.
        """
        rows: list[tuple] = []
        while True:
            row = self._next_row(statement, result)
            if row is None:
                break
            rows.append(row)
        self.meter.charge(
            CLIENT_CPU,
            max(1, len(rows))
            * self.meter.costs.cache_block_read_per_row_seconds,
            "static cursor materialize")
        result.static_rows = rows
        result.cursor_index = 0

    def fetch_one(self, statement: StatementHandle):
        """Next row or ``None`` when the result is consumed."""
        result = self._open_result(statement)
        self.meter.charge(CLIENT_CPU, self.meter.costs.client_fetch_seconds,
                          "SQLFetch")
        if result.static_rows is not None:
            if result.cursor_index >= len(result.static_rows):
                result.cursor_after_last = True
                return None
            row = result.static_rows[result.cursor_index]
            result.cursor_index += 1
            result.position += 1
            result.cursor_after_last = False
            return row
        row = self._next_row(statement, result)
        if row is not None:
            result.position += 1
        return row

    def fetch_scroll(self, statement: StatementHandle, orientation: str,
                     offset: int = 0):
        """Scrollable fetch over a static cursor.

        Forward-only cursors accept only SQL_FETCH_NEXT; anything else
        raises SQLSTATE HY106 (fetch type out of range), like a real
        driver.
        """
        from repro.odbc.constants import (
            SQL_FETCH_ABSOLUTE,
            SQL_FETCH_FIRST,
            SQL_FETCH_LAST,
            SQL_FETCH_NEXT,
            SQL_FETCH_PRIOR,
            SQL_FETCH_RELATIVE,
        )

        result = self._open_result(statement)
        if result.static_rows is None:
            if orientation == SQL_FETCH_NEXT:
                return self.fetch_one(statement)
            raise OdbcError("HY106",
                            "forward-only cursor cannot scroll")
        self.meter.charge(CLIENT_CPU,
                          self.meter.costs.client_fetch_seconds,
                          "SQLFetchScroll")
        rows = result.static_rows
        # The row the cursor sits on (len(rows) = after-last sentinel).
        current = (len(rows) if result.cursor_after_last
                   else result.cursor_index - 1)
        if orientation == SQL_FETCH_NEXT:
            target = current + 1
        elif orientation == SQL_FETCH_PRIOR:
            target = current - 1
        elif orientation == SQL_FETCH_FIRST:
            target = 0
        elif orientation == SQL_FETCH_LAST:
            target = len(rows) - 1
        elif orientation == SQL_FETCH_ABSOLUTE:
            target = offset - 1  # ODBC positions are 1-based
        elif orientation == SQL_FETCH_RELATIVE:
            target = current + offset
        else:
            raise OdbcError("HY106", f"unknown orientation {orientation!r}")
        if target < 0 or target >= len(rows):
            # Cursor lands before-first / after-last.
            result.cursor_index = 0 if target < 0 else len(rows)
            result.cursor_after_last = target >= len(rows)
            return None
        result.cursor_index = target + 1
        result.cursor_after_last = False
        return rows[target]

    def fetch_block(self, statement: StatementHandle,
                    max_rows: int) -> list[tuple]:
        """Block-cursor read: up to ``max_rows`` rows with bulk pricing.

        One driver call moves many rows, so the per-row client cost drops
        from ``client_fetch_seconds`` to
        ``cache_block_read_per_row_seconds`` — this is the mechanism the
        Phoenix client cache uses ("a single ODBC block cursor read").
        """
        result = self._open_result(statement)
        rows: list[tuple] = []
        while len(rows) < max_rows:
            row = self._next_row(statement, result)
            if row is None:
                break
            rows.append(row)
            result.position += 1
        self.meter.charge(
            CLIENT_CPU,
            max(1, len(rows))
            * self.meter.costs.cache_block_read_per_row_seconds,
            "block cursor read")
        return rows

    def advance(self, statement: StatementHandle, count: int) -> int:
        """Server-side skip of ``count`` rows (repositioning procedure)."""
        result = self._open_result(statement)
        skipped = 0
        # Rows already shipped to the client buffer are skipped locally.
        local = min(count, len(result.buffered))
        if local:
            del result.buffered[:local]
            skipped += local
        if skipped < count and result.statement_id and not result.done:
            response = self.network.call(self.server, AdvanceRequest(
                session_token=statement.connection.session_token,
                statement_id=result.statement_id, count=count - skipped))
            skipped += response.skipped
            if response.done:
                result.done = True
        result.position += skipped
        return skipped

    def close_statement(self, statement: StatementHandle) -> None:
        result = statement.result
        if result is not None and result.statement_id and not result.done:
            self.network.call(self.server, CloseStatementRequest(
                session_token=statement.connection.session_token,
                statement_id=result.statement_id))
        statement.result = None

    # -- internals ----------------------------------------------------------

    def _open_result(self, statement: StatementHandle) -> ResultState:
        if statement.result is None:
            raise OdbcError("24000", "no open result on this statement")
        return statement.result

    def _next_row(self, statement: StatementHandle, result: ResultState):
        if not result.buffered and not result.done:
            response = self.network.call(self.server, FetchRequest(
                session_token=statement.connection.session_token,
                statement_id=result.statement_id))
            result.buffered = list(response.rows)
            result.done = response.done
        if result.buffered:
            return result.buffered.pop(0)
        return None

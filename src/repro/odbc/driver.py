"""The native ODBC driver: protocol operations over the simulated wire.

This is the "vendor supplied ODBC driver" of the paper.  It is a thin
client: it translates driver-manager calls into protocol requests, keeps
the client-side row buffer of each open result, and *raises* transport
errors (:class:`ServerDownError`, :class:`ServerCrashedError`,
:class:`ConnectionLostError`) — it makes no attempt to recover.  Masking
those errors is Phoenix's job, one layer up.

Pipelined result delivery (``CostModel.fetch_ahead_depth`` > 0): after a
wire batch lands in the client buffer, the driver speculatively issues
the next :class:`FetchRequest` via ``SimulatedNetwork.call_overlapped``.
The overlap is modeled deterministically — the in-flight request's
virtual completion time is recorded at issue (``start + service``, where
``start`` queues behind anything already in flight on the modeled FIFO
server), and consuming the batch charges only ``max(0, completion -
now)``; no wall-clock, no randomness.  A synchronous request issued
while the pipeline is busy first waits it out (:meth:`_sync_pipeline`).
Prefetched rows are *not delivered*: ``ResultState.position`` never
counts them, so crash recovery repositions to the last row the
application actually saw and in-flight batches are simply discarded
(counted as ``prefetch_wasted``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OdbcError
from repro.server.network import SimulatedNetwork
from repro.server.protocol import (
    AdvanceRequest,
    CloseStatementRequest,
    ConnectRequest,
    DisconnectRequest,
    ExecuteRequest,
    FetchRequest,
    PingRequest,
    SetOptionRequest,
    VersionProbeRequest,
)
from repro.server.server import DatabaseServer
from repro.sim.costs import CLIENT_CPU, NETWORK
from repro.sim.meter import Meter
from repro.odbc.constants import SQL_ATTR_CURSOR_TYPE, SQL_CURSOR_STATIC
from repro.odbc.handles import ConnectionHandle, ResultState, StatementHandle


@dataclass(slots=True)
class _InFlightFetch:
    """One speculative fetch whose service time has not been realized."""

    response: object
    #: Virtual time at which the modeled server+downlink finish this
    #: request; consumption charges ``max(0, completion - now)``.
    completion: float
    service_seconds: float
    #: ``server.crashes`` at issue; a mismatch at consumption means the
    #: batch was lost with the server incarnation that produced it.
    crash_epoch: int
    #: Open latency-ledger entry of the overlapped exchange (None when
    #: the ledger is off); closed when the batch is realized/discarded.
    ledger_entry: object = None


class NativeDriver:
    """Protocol client for one server."""

    def __init__(self, server: DatabaseServer, network: SimulatedNetwork,
                 meter: Meter):
        self.server = server
        self.network = network
        self.meter = meter
        #: Catalog generation last reported by the server (rides on every
        #: ExecuteResponse).  Client-side metadata caches key on it so any
        #: DDL observed through this driver invalidates them.
        self.last_schema_version = 0
        #: Shared-result-cache piggybacks off the most recent
        #: ExecuteResponse (all stay at their empty defaults while the
        #: cache knob is off): the executed SELECT's read-version stamps,
        #: the committed version bumps the response carried, and the
        #: session's own uncommitted write set.
        self.last_read_versions: dict | None = None
        self.last_table_versions: dict = {}
        self.last_dirty_tables: tuple = ()
        # Modeled FIFO pipeline: virtual time until which in-flight
        # (overlapped) requests keep the server/wire busy, and the crash
        # epoch that booking belongs to.
        self._busy_until = 0.0
        self._busy_epoch = 0
        # Open ledger entries of pipelined (execute_pipelined) requests,
        # oldest first; closed when the pipeline synchronizes.
        self._pipeline_entries: list = []

    # -- connections ----------------------------------------------------------

    def connect(self, connection: ConnectionHandle, login: str,
                options: dict | None = None) -> None:
        options = dict(options or {})
        self.meter.charge(CLIENT_CPU, self.meter.costs.connect_seconds,
                          "connect handshake")
        response = self._call(
            ConnectRequest(login=login, options=options))
        connection.connected = True
        connection.session_token = response.session_token
        connection.login = login
        connection.options = options

    def disconnect(self, connection: ConnectionHandle) -> None:
        if connection.connected:
            self._call(DisconnectRequest(
                session_token=connection.session_token))
        connection.connected = False
        connection.session_token = 0

    def set_connection_option(self, connection: ConnectionHandle,
                              name: str, value) -> None:
        self.meter.charge(CLIENT_CPU,
                          self.meter.costs.option_reset_seconds,
                          "set option")
        self._call(SetOptionRequest(
            session_token=connection.session_token, name=name, value=value))
        connection.options[name] = value

    def ping(self) -> bool:
        response = self._call(PingRequest())
        return response.alive

    def fetch_table_versions(self, connection: ConnectionHandle) -> dict:
        """One round trip for the server's committed per-table DML
        version vector (shared-result-cache revalidation)."""
        response = self._call(VersionProbeRequest(
            session_token=connection.session_token))
        return dict(response.versions)

    # -- statements ------------------------------------------------------------

    def execute(self, statement: StatementHandle, sql: str,
                params: dict | None = None) -> ResultState:
        connection = statement.connection
        if not connection.connected:
            raise OdbcError("08003", "connection is not open")
        if statement.result is not None:
            # Re-execute (or a recovery reopen) abandons whatever was
            # still in flight for the old result.
            self.discard_prefetch(statement.result)
        response = self._call(ExecuteRequest(
            session_token=connection.session_token, sql=sql,
            params=dict(params or {})))
        result = self._install_result(statement, response, sql)
        if response.kind == "rows":
            # Prime fetch-ahead on the fresh result (no-op at depth 0).
            if not result.done:
                self._issue_prefetch(statement, result)
            if statement.attrs.get(
                    SQL_ATTR_CURSOR_TYPE) == SQL_CURSOR_STATIC:
                self._materialize_static(statement, result)
        return result

    def execute_pipelined(self, statement: StatementHandle, sql: str,
                          params: dict | None = None) -> ResultState:
        """Issue a statement without waiting for its response.

        The uplink is charged now; the server's processing and the
        response downlink are booked onto the modeled pipeline and
        realized at the next synchronous request (or
        :meth:`drain_pipeline`).  Used by the Phoenix persist pipeline
        for the bookkeeping round trips surrounding a server-local load.
        Degrades to :meth:`execute` in multi-stream worlds.  Callers
        issue DML/DDL only, so static-cursor materialization is skipped.
        """
        connection = statement.connection
        if not connection.connected:
            raise OdbcError("08003", "connection is not open")
        if not self.meter.advance_clock:
            return self.execute(statement, sql, params)
        response, service = self.network.call_overlapped(
            self.server, ExecuteRequest(
                session_token=connection.session_token, sql=sql,
                params=dict(params or {})))
        if self.network.last_overlapped_entry is not None:
            self._pipeline_entries.append(
                self.network.last_overlapped_entry)
            self.network.last_overlapped_entry = None
        self._pipeline_register(service)
        self.meter.count("pipeline_requests")
        self.meter.count("pipeline_overlap_seconds", service)
        return self._install_result(statement, response, sql)

    def _install_result(self, statement: StatementHandle, response,
                        sql: str) -> ResultState:
        """Turn an ExecuteResponse into this statement's ResultState."""
        self.last_schema_version = response.schema_version
        self.last_read_versions = getattr(response, "read_versions", None)
        self.last_table_versions = getattr(response, "table_versions", {})
        self.last_dirty_tables = tuple(
            getattr(response, "dirty_tables", ()))
        if self.last_table_versions:
            # Committed version bumps ride on every response; fold them
            # into the shared result cache's mirror (evicting stamped
            # entries) no matter which virtual session carried them.
            cache = getattr(self.meter, "_shared_result_cache", None)
            if cache is not None:
                cache.observe_committed(self.last_table_versions,
                                        self.server.crashes)
        result = ResultState()
        if response.kind == "rows":
            result.columns = response.columns
            result.statement_id = response.statement_id
            result.buffered = list(response.rows)
            result.done = response.done
        elif response.kind == "rowcount":
            result.rowcount = response.rowcount
            result.done = True
        else:
            result.done = True
        statement.result = result
        statement.last_sql = sql
        return result

    def _materialize_static(self, statement: StatementHandle,
                            result: ResultState) -> None:
        """Drain the whole result client-side for a static cursor.

        Static cursors buffer the full result at the client (one bulk
        read per wire batch), which is what lets them scroll freely.
        """
        rows: list[tuple] = []
        while True:
            row = self._next_row(statement, result)
            if row is None:
                break
            rows.append(row)
        self.meter.charge(
            CLIENT_CPU,
            max(1, len(rows))
            * self.meter.costs.cache_block_read_per_row_seconds,
            "static cursor materialize")
        result.static_rows = rows
        result.cursor_index = 0

    def fetch_one(self, statement: StatementHandle):
        """Next row or ``None`` when the result is consumed."""
        result = self._open_result(statement)
        self.meter.charge(CLIENT_CPU, self.meter.costs.client_fetch_seconds,
                          "SQLFetch")
        if result.static_rows is not None:
            if result.cursor_index >= len(result.static_rows):
                result.cursor_after_last = True
                return None
            row = result.static_rows[result.cursor_index]
            result.cursor_index += 1
            result.position += 1
            result.cursor_after_last = False
            return row
        row = self._next_row(statement, result)
        if row is not None:
            result.position += 1
        return row

    def fetch_scroll(self, statement: StatementHandle, orientation: str,
                     offset: int = 0):
        """Scrollable fetch over a static cursor.

        Forward-only cursors accept only SQL_FETCH_NEXT; anything else
        raises SQLSTATE HY106 (fetch type out of range), like a real
        driver.
        """
        from repro.odbc.constants import (
            SQL_FETCH_ABSOLUTE,
            SQL_FETCH_FIRST,
            SQL_FETCH_LAST,
            SQL_FETCH_NEXT,
            SQL_FETCH_PRIOR,
            SQL_FETCH_RELATIVE,
        )

        result = self._open_result(statement)
        if result.static_rows is None:
            if orientation == SQL_FETCH_NEXT:
                return self.fetch_one(statement)
            raise OdbcError("HY106",
                            "forward-only cursor cannot scroll")
        self.meter.charge(CLIENT_CPU,
                          self.meter.costs.client_fetch_seconds,
                          "SQLFetchScroll")
        rows = result.static_rows
        # The row the cursor sits on (len(rows) = after-last sentinel).
        current = (len(rows) if result.cursor_after_last
                   else result.cursor_index - 1)
        if orientation == SQL_FETCH_NEXT:
            target = current + 1
        elif orientation == SQL_FETCH_PRIOR:
            target = current - 1
        elif orientation == SQL_FETCH_FIRST:
            target = 0
        elif orientation == SQL_FETCH_LAST:
            target = len(rows) - 1
        elif orientation == SQL_FETCH_ABSOLUTE:
            target = offset - 1  # ODBC positions are 1-based
        elif orientation == SQL_FETCH_RELATIVE:
            target = current + offset
        else:
            raise OdbcError("HY106", f"unknown orientation {orientation!r}")
        if target < 0 or target >= len(rows):
            # Cursor lands before-first / after-last.
            result.cursor_index = 0 if target < 0 else len(rows)
            result.cursor_after_last = target >= len(rows)
            return None
        result.cursor_index = target + 1
        result.cursor_after_last = False
        return rows[target]

    def fetch_block(self, statement: StatementHandle,
                    max_rows: int) -> list[tuple]:
        """Block-cursor read: up to ``max_rows`` rows with bulk pricing.

        One driver call moves many rows, so the per-row client cost drops
        from ``client_fetch_seconds`` to
        ``cache_block_read_per_row_seconds`` — this is the mechanism the
        Phoenix client cache uses ("a single ODBC block cursor read").
        """
        result = self._open_result(statement)
        rows: list[tuple] = []
        while len(rows) < max_rows:
            row = self._next_row(statement, result)
            if row is None:
                break
            rows.append(row)
            result.position += 1
        self.meter.charge(
            CLIENT_CPU,
            max(1, len(rows))
            * self.meter.costs.cache_block_read_per_row_seconds,
            "block cursor read")
        return rows

    def advance(self, statement: StatementHandle, count: int) -> int:
        """Server-side skip of ``count`` rows (repositioning procedure).

        Returns the number of rows *actually* skipped, which may be less
        than ``count``: a fully-buffered result (``statement_id`` 0) has
        nothing left server-side, so the skip clamps to what the client
        buffer holds.  ``result.position`` advances by the returned
        count only — callers that need an exact landing point must check
        the return value, not assume ``count``.
        """
        result = self._open_result(statement)
        skipped = 0
        while skipped < count:
            # Rows already shipped to the client are skipped locally —
            # first the delivered buffer, then in-flight prefetched
            # batches (their rows are already off the server's stream).
            if result.buffered:
                take = min(count - skipped, len(result.buffered))
                del result.buffered[:take]
                skipped += take
                continue
            if result.prefetch:
                self._consume_prefetch(result)
                if result.buffered or result.prefetch:
                    continue
            break
        if skipped < count and result.statement_id and not result.done:
            response = self._call(AdvanceRequest(
                session_token=statement.connection.session_token,
                statement_id=result.statement_id, count=count - skipped))
            skipped += response.skipped
            if response.done:
                result.done = True
        result.position += skipped
        return skipped

    def discard_prefetch(self, result: ResultState) -> int:
        """Drop every in-flight fetch-ahead batch (counted as wasted).

        Prefetched rows were never delivered — ``position`` does not
        count them — so discarding loses nothing.  Recovery paths call
        this before repositioning; it also covers statement close.
        """
        dropped = len(result.prefetch)
        if dropped:
            self.meter.count("prefetch_wasted", dropped)
            for in_flight in result.prefetch:
                self.meter.latency_close(in_flight.ledger_entry,
                                         wasted=True)
            result.prefetch.clear()
        return dropped

    def close_statement(self, statement: StatementHandle) -> None:
        result = statement.result
        if result is not None:
            # Abandoned in-flight batches: produced and shipped for
            # nothing.
            self.discard_prefetch(result)
        if result is not None and result.statement_id and not result.done:
            self._call(CloseStatementRequest(
                session_token=statement.connection.session_token,
                statement_id=result.statement_id))
        statement.result = None

    # -- internals ----------------------------------------------------------

    def _open_result(self, statement: StatementHandle) -> ResultState:
        if statement.result is None:
            raise OdbcError("24000", "no open result on this statement")
        return statement.result

    def _next_row(self, statement: StatementHandle, result: ResultState):
        if not result.buffered and not result.done:
            if result.prefetch:
                self._consume_prefetch(result)
            if not result.buffered and not result.done:
                response = self._call(FetchRequest(
                    session_token=statement.connection.session_token,
                    statement_id=result.statement_id))
                result.buffered = list(response.rows)
                result.done = response.done
            if not result.done:
                # Top the pipeline back up after a refill.
                self._issue_prefetch(statement, result)
        if result.buffered:
            return result.buffered.pop(0)
        return None

    # -- pipelined delivery ---------------------------------------------------

    def _call(self, request):
        """Synchronous exchange: drains the pipeline, then blocks."""
        self._sync_pipeline()
        return self.network.call(self.server, request)

    def _sync_pipeline(self) -> None:
        """Wait until the modeled server/wire pipeline is idle.

        Overlapped requests keep the FIFO server busy until their
        recorded completion; a synchronous request queues behind them,
        so the remaining virtual time is charged here as a stall.  A
        crash since the booking empties the pipeline instead — the
        failure (if any) surfaces on the caller's own request.
        """
        if self._busy_until <= 0.0:
            self._close_pipeline_entries(wasted=True)
            return
        busy_until = self._busy_until
        self._busy_until = 0.0
        if self._busy_epoch != self.server.crashes:
            # The bookings died with the server incarnation.
            self._close_pipeline_entries(wasted=True)
            return
        stall = busy_until - self.meter.peek_now()
        if stall > 0:
            entries = self._pipeline_entries
            if entries:
                # The wait is for the *last* booked request to finish;
                # attribute the stall to it.
                self.meter.latency_resume(entries[-1])
            self.meter.charge(NETWORK, stall, "pipeline stall")
            self.meter.count("pipeline_stall_seconds", stall)
        self._close_pipeline_entries(wasted=False)

    def _close_pipeline_entries(self, wasted: bool) -> None:
        entries = self._pipeline_entries
        if entries:
            self._pipeline_entries = []
            for entry in entries:
                self.meter.latency_close(entry, wasted=wasted)

    def _pipeline_register(self, service_seconds: float) -> float:
        """Book an overlapped request's service onto the pipeline;
        returns its virtual completion time."""
        now = self.meter.peek_now()
        if (self._busy_until > now
                and self._busy_epoch == self.server.crashes):
            start = self._busy_until
        else:
            start = now
        completion = start + service_seconds
        self._busy_until = completion
        self._busy_epoch = self.server.crashes
        return completion

    def drain_pipeline(self) -> None:
        """Public synchronization point: realize any outstanding
        overlapped service time (used by the Phoenix persist pipeline
        so per-step timings stay honest)."""
        self._sync_pipeline()

    def _issue_prefetch(self, statement: StatementHandle,
                        result: ResultState) -> None:
        """Top up fetch-ahead to ``fetch_ahead_depth`` in-flight batches."""
        depth = self.meter.costs.fetch_ahead_depth
        if depth <= 0 or not self.meter.advance_clock:
            return
        if not result.statement_id:
            return
        pending = result.prefetch
        while len(pending) < depth:
            stream_done = (pending[-1].response.done if pending
                           else result.done)
            if stream_done:
                return
            response, service = self.network.call_overlapped(
                self.server, FetchRequest(
                    session_token=statement.connection.session_token,
                    statement_id=result.statement_id,
                    speculative=True))
            ledger_entry = self.network.last_overlapped_entry
            self.network.last_overlapped_entry = None
            pending.append(_InFlightFetch(
                response=response,
                completion=self._pipeline_register(service),
                service_seconds=service,
                crash_epoch=self.server.crashes,
                ledger_entry=ledger_entry))
            self.meter.count("prefetch_issued")

    def _consume_prefetch(self, result: ResultState) -> None:
        """Install the oldest in-flight batch into the client buffer.

        Charges only the *unoverlapped* remainder of the request —
        ``max(0, completion - now)`` — the rest ran while the client was
        consuming the previous batch.  Batches issued to a server
        incarnation that has since crashed are discarded (the rows died
        with it); the caller falls through to a synchronous fetch, which
        surfaces the failure to the recovery layer.
        """
        pending = result.prefetch
        entry = pending.pop(0)
        if entry.crash_epoch != self.server.crashes:
            self.meter.count("prefetch_wasted", 1 + len(pending))
            self.meter.latency_close(entry.ledger_entry, wasted=True)
            for in_flight in pending:
                self.meter.latency_close(in_flight.ledger_entry,
                                         wasted=True)
            pending.clear()
            self._busy_until = 0.0
            return
        stall = entry.completion - self.meter.peek_now()
        if stall > 0:
            # The realized remainder lands in the entry opened at issue,
            # so the batch's ledger line reads uplink + stall (its
            # overlapped service stays in the hidden column).
            self.meter.latency_resume(entry.ledger_entry)
            self.meter.charge(NETWORK, stall, "prefetch stall")
        else:
            stall = 0.0
        self.meter.latency_close(entry.ledger_entry)
        self.meter.count("prefetch_hits")
        self.meter.count("prefetch_overlap_seconds",
                         max(0.0, entry.service_seconds - stall))
        response = entry.response
        result.buffered = list(response.rows)
        result.done = response.done

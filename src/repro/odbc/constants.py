"""ODBC return codes, attributes and SQLSTATEs (the subset we model)."""

SQL_SUCCESS = 0
SQL_SUCCESS_WITH_INFO = 1
SQL_NO_DATA = 100
SQL_ERROR = -1
SQL_INVALID_HANDLE = -2

# Statement attributes
SQL_ATTR_ROW_ARRAY_SIZE = "row_array_size"
SQL_ATTR_QUERY_TIMEOUT = "query_timeout"
SQL_ATTR_CURSOR_TYPE = "cursor_type"

# Cursor types
SQL_CURSOR_FORWARD_ONLY = "forward_only"
SQL_CURSOR_STATIC = "static"

# SQLFetchScroll orientations
SQL_FETCH_NEXT = "next"
SQL_FETCH_PRIOR = "prior"
SQL_FETCH_FIRST = "first"
SQL_FETCH_LAST = "last"
SQL_FETCH_ABSOLUTE = "absolute"   # 1-based position
SQL_FETCH_RELATIVE = "relative"

# Connection options
SQL_ATTR_AUTOCOMMIT = "autocommit"
SQL_ATTR_LOGIN_TIMEOUT = "login_timeout"

# SQLSTATEs
SQLSTATE_COMM_LINK_FAILURE = "08S01"   # communication link failure
SQLSTATE_CONNECTION_DEAD = "08003"     # connection does not exist
SQLSTATE_GENERAL_ERROR = "HY000"
SQLSTATE_SYNTAX_ERROR = "42000"
SQLSTATE_CONSTRAINT = "23000"
SQLSTATE_SERIALIZATION_FAILURE = "40001"  # deadlock victim
SQLSTATE_LOCK_TIMEOUT = "HYT00"  # lock wait (row granularity): retry later

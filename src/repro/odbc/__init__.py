"""An ODBC-shaped data access layer.

The application-facing surface mirrors ODBC's shape — environment /
connection / statement handles, ``SQLExecDirect``-style calls, return
codes plus diagnostics — because Phoenix's whole premise is wrapping that
surface without the application noticing.  The same application code runs
against :class:`~repro.odbc.driver_manager.DriverManager` (native) or
:class:`~repro.phoenix.driver_manager.PhoenixDriverManager` (persistent
sessions); the transparency tests assert the row streams are identical.
"""

from repro.odbc.constants import (
    SQL_ERROR,
    SQL_NO_DATA,
    SQL_SUCCESS,
    SQLSTATE_COMM_LINK_FAILURE,
    SQLSTATE_CONNECTION_DEAD,
)
from repro.odbc.driver import NativeDriver
from repro.odbc.driver_manager import DriverManager
from repro.odbc.handles import (
    ConnectionHandle,
    Diagnostic,
    EnvironmentHandle,
    StatementHandle,
)

__all__ = [
    "SQL_SUCCESS",
    "SQL_ERROR",
    "SQL_NO_DATA",
    "SQLSTATE_COMM_LINK_FAILURE",
    "SQLSTATE_CONNECTION_DEAD",
    "NativeDriver",
    "DriverManager",
    "EnvironmentHandle",
    "ConnectionHandle",
    "StatementHandle",
    "Diagnostic",
]

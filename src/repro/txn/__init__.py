"""Transactions: strict two-phase table locking plus log-driven rollback.

* :class:`~repro.txn.locks.LockManager` — shared/exclusive table locks,
  no-wait conflict policy (a conflicting request raises
  :class:`~repro.errors.DeadlockError` immediately, which is how the
  single-threaded simulation avoids blocking forever; the paper likewise
  treats transaction aborts as "a normal event that most applications
  already handle").
* :class:`~repro.txn.manager.TransactionManager` — begin/commit/abort,
  write-ahead logging of every data and DDL change, rollback by walking
  the per-transaction log chain.
"""

from repro.txn.locks import LockManager, LockMode
from repro.txn.manager import Transaction, TransactionManager

__all__ = ["LockManager", "LockMode", "Transaction", "TransactionManager"]

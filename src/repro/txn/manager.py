"""Transaction manager: WAL-logged begin/commit/abort and rollback.

The manager owns transaction identity and the write-ahead discipline.  The
engine's table runtime calls the ``log_*`` helpers *before* mutating pages
(WAL rule); commit forces the log; abort walks the transaction's backward
log chain, applying inverse operations and logging CLRs — the same
compensation helpers restart recovery uses, so rollback behaviour is
identical online and after a crash.

Transaction ids restart above the highest id ever seen in the log so an id
is never reused across crashes (reuse would corrupt a later analysis
pass).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import TransactionError
from repro.storage.heap import RowId
from repro.txn.locks import LockManager
from repro.wal.log import WriteAheadLog
from repro.wal.records import (
    AbortRecord,
    BeginRecord,
    CLRRecord,
    CommitRecord,
    CreateIndexRecord,
    CreateProcedureRecord,
    CreateTableRecord,
    DeleteRecord,
    DropIndexRecord,
    DropProcedureRecord,
    DropTableRecord,
    EndRecord,
    InsertRecord,
    LogRecord,
    UpdateRecord,
)


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """One transaction's volatile control block."""

    txn_id: int
    last_lsn: int = 0
    #: LSN of this transaction's BeginRecord — the oldest record undo can
    #: reach; log truncation must never drop past the minimum first_lsn
    #: of the active set.
    first_lsn: int = 0
    state: TxnState = TxnState.ACTIVE
    #: Actions deferred to commit (e.g. physical deallocation of a dropped
    #: table's pages — deferring makes DROP TABLE undoable).
    on_commit: list = field(default_factory=list)
    #: Tables this transaction wrote (DML or DDL), lowercased.  Host-only
    #: bookkeeping — charged nothing — consumed at commit by the shared
    #: result cache's per-table DML version bump.
    modified_tables: set = field(default_factory=set)

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE


class TransactionManager:
    """Creates transactions and mediates all logged changes."""

    def __init__(self, log: WriteAheadLog, locks: LockManager, target):
        """``target`` is the engine-side recovery interface (heaps + DDL)."""
        self._log = log
        self.locks = locks
        self._target = target
        self._active: dict[int, Transaction] = {}
        self._next_txn_id = self._recovered_next_txn_id(log)

    @staticmethod
    def _recovered_next_txn_id(log: WriteAheadLog) -> int:
        # Records archived by log truncation are no longer iterable, but
        # their txn ids must stay retired (reuse would corrupt analysis).
        highest = getattr(log, "truncated_max_txn_id", 0)
        for rec in log.all_records():
            highest = max(highest, rec.txn_id)
        return highest + 1

    # -- lifecycle -----------------------------------------------------------

    def begin(self) -> Transaction:
        txn = Transaction(txn_id=self._next_txn_id)
        self._next_txn_id += 1
        txn.last_lsn = self._log.append(BeginRecord(txn_id=txn.txn_id))
        txn.first_lsn = txn.last_lsn
        self._active[txn.txn_id] = txn
        return txn

    def commit(self, txn: Transaction) -> None:
        """Commit ``txn``: log a commit record, force the log, ack.

        Durability caveat: when the cost model enables *asynchronous
        commit* (``async_commit_window_seconds > 0``), the force below
        may be deferred — this method then marks the transaction
        COMMITTED (and the client is acknowledged) while the commit
        record is still in the volatile log tail, so a crash inside the
        window loses the acked commit.  That bounded durability loss is
        the deliberate trade (PostgreSQL ``synchronous_commit=off``
        semantics); with the default window of 0.0 every commit is
        durable before this method returns.
        """
        self._require_active(txn)
        self._chain(txn, CommitRecord(txn_id=txn.txn_id))
        self._log.force(commit=True)
        self._log.append(EndRecord(txn_id=txn.txn_id))
        txn.state = TxnState.COMMITTED
        for action in txn.on_commit:
            action()
        txn.on_commit.clear()
        self._finish(txn)
        # Fuzzy-checkpoint cadence hook: with the knob at its 0.0 default
        # this is a single comparison — no charge, no behaviour change.
        meter = self._log.meter
        if meter is not None \
                and meter.costs.checkpoint_interval_seconds > 0.0:
            hook = getattr(self._target, "maybe_fuzzy_checkpoint", None)
            if hook is not None:
                hook()
        # Shared-result-cache invalidation hook: bump per-table DML
        # versions for everything this transaction wrote.  Gated the same
        # way — with the cache off this is one comparison.
        if meter is not None and meter.costs.result_cache_entries > 0 \
                and txn.modified_tables:
            hook = getattr(self._target, "note_committed_writes", None)
            if hook is not None:
                hook(txn.modified_tables)
        txn.modified_tables.clear()

    def abort(self, txn: Transaction) -> None:
        self._require_active(txn)
        self._chain(txn, AbortRecord(txn_id=txn.txn_id))
        self._rollback(txn)
        self._log.append(EndRecord(txn_id=txn.txn_id))
        # Aborts need no synchronous force (the undo is repeatable from
        # whatever part of the log survives); flush write-behind.
        self._log.force(sync=False)
        txn.state = TxnState.ABORTED
        txn.on_commit.clear()
        txn.modified_tables.clear()
        self._finish(txn)

    def abort_all_active(self) -> list[int]:
        """Abort every in-flight transaction (server-side session sweep)."""
        ids = sorted(self._active)
        for txn_id in ids:
            self.abort(self._active[txn_id])
        return ids

    @property
    def active_transactions(self) -> dict[int, Transaction]:
        return dict(self._active)

    def active_txn_lsns(self) -> dict[int, int]:
        """txn_id -> last_lsn map recorded in checkpoint records."""
        return {t.txn_id: t.last_lsn for t in self._active.values()}

    def active_txn_first_lsns(self) -> dict[int, int]:
        """txn_id -> first_lsn map (fuzzy checkpoints log this so undo
        chains stay reachable and truncation knows what to keep)."""
        return {t.txn_id: t.first_lsn for t in self._active.values()}

    # -- logged data changes (called by the table runtime pre-mutation) --------

    def log_insert(self, txn: Transaction, table_name: str, rid: RowId,
                   row: tuple, cost_factor: float = 1.0) -> int:
        txn.modified_tables.add(table_name.lower())
        return self._chain(txn, InsertRecord(
            txn_id=txn.txn_id, table_name=table_name, file_id=rid.file_id,
            page_no=rid.page_no, slot=rid.slot, row=row), cost_factor)

    def log_delete(self, txn: Transaction, table_name: str, rid: RowId,
                   row: tuple, cost_factor: float = 1.0) -> int:
        txn.modified_tables.add(table_name.lower())
        return self._chain(txn, DeleteRecord(
            txn_id=txn.txn_id, table_name=table_name, file_id=rid.file_id,
            page_no=rid.page_no, slot=rid.slot, row=row), cost_factor)

    def log_update(self, txn: Transaction, table_name: str, rid: RowId,
                   old_row: tuple, new_row: tuple,
                   cost_factor: float = 1.0) -> int:
        txn.modified_tables.add(table_name.lower())
        return self._chain(txn, UpdateRecord(
            txn_id=txn.txn_id, table_name=table_name, file_id=rid.file_id,
            page_no=rid.page_no, slot=rid.slot, old_row=old_row,
            new_row=new_row), cost_factor)

    # -- logged DDL -----------------------------------------------------------

    def log_create_table(self, txn: Transaction, table: dict) -> int:
        txn.modified_tables.add(table["name"].lower())
        return self._chain(txn, CreateTableRecord(txn_id=txn.txn_id,
                                                  table=table))

    def log_drop_table(self, txn: Transaction, table: dict) -> int:
        txn.modified_tables.add(table["name"].lower())
        return self._chain(txn, DropTableRecord(txn_id=txn.txn_id,
                                                table=table))

    def log_create_procedure(self, txn: Transaction, name: str,
                             param_names: tuple, body_sql: str) -> int:
        return self._chain(txn, CreateProcedureRecord(
            txn_id=txn.txn_id, name=name, param_names=param_names,
            body_sql=body_sql))

    def log_drop_procedure(self, txn: Transaction, name: str,
                           param_names: tuple, body_sql: str) -> int:
        return self._chain(txn, DropProcedureRecord(
            txn_id=txn.txn_id, name=name, param_names=param_names,
            body_sql=body_sql))

    def log_create_view(self, txn: Transaction, name: str,
                        body_sql: str) -> int:
        from repro.wal.records import CreateViewRecord

        txn.modified_tables.add(name.lower())
        return self._chain(txn, CreateViewRecord(txn_id=txn.txn_id,
                                                 name=name,
                                                 body_sql=body_sql))

    def log_drop_view(self, txn: Transaction, name: str,
                      body_sql: str) -> int:
        from repro.wal.records import DropViewRecord

        txn.modified_tables.add(name.lower())
        return self._chain(txn, DropViewRecord(txn_id=txn.txn_id,
                                               name=name,
                                               body_sql=body_sql))

    def log_create_index(self, txn: Transaction, index: dict) -> int:
        txn.modified_tables.add(index["table_name"].lower())
        return self._chain(txn, CreateIndexRecord(txn_id=txn.txn_id,
                                                  index=index))

    def log_drop_index(self, txn: Transaction, index: dict) -> int:
        txn.modified_tables.add(index["table_name"].lower())
        return self._chain(txn, DropIndexRecord(txn_id=txn.txn_id,
                                                index=index))

    # -- internals -------------------------------------------------------------

    def _chain(self, txn: Transaction, record: LogRecord,
               cost_factor: float = 1.0) -> int:
        self._require_active(txn)
        record.prev_lsn = txn.last_lsn
        txn.last_lsn = self._log.append(record, cost_factor)
        return txn.last_lsn

    def _rollback(self, txn: Transaction) -> None:
        """Online rollback.

        Compensating actions are applied through the target's
        ``undo_action`` (which keeps indexes maintained) rather than the
        raw-heap path restart recovery uses (which rebuilds indexes at
        the end instead).
        """
        from repro.wal.recovery import compensate

        lsn = txn.last_lsn
        while lsn:
            rec = self._log.record(lsn)
            if isinstance(rec, CLRRecord):
                lsn = rec.undo_next_lsn
                continue
            if isinstance(rec, (BeginRecord, AbortRecord, CommitRecord,
                                EndRecord)):
                lsn = rec.prev_lsn
                continue
            action = compensate(rec)
            if action is not None:
                clr = CLRRecord(txn_id=txn.txn_id, prev_lsn=txn.last_lsn,
                                action=action, undo_next_lsn=rec.prev_lsn)
                txn.last_lsn = self._log.append(clr)
                action.lsn = clr.lsn
                self._target.undo_action(action)
            lsn = rec.prev_lsn

    def _finish(self, txn: Transaction) -> None:
        self.locks.release_all(txn.txn_id)
        self._active.pop(txn.txn_id, None)

    @staticmethod
    def _require_active(txn: Transaction) -> None:
        if not txn.is_active:
            raise TransactionError(
                f"transaction {txn.txn_id} is {txn.state.value}")

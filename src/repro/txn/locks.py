"""Table-granularity lock manager with a no-wait policy.

Shared (S) and exclusive (X) locks at table granularity, strict two-phase:
locks are held until commit/abort.  A request that conflicts with a lock
held by a *different* transaction raises
:class:`~repro.errors.DeadlockError` immediately (no-wait deadlock
avoidance) — the requester is expected to abort and retry, which matches
the paper's stance that applications already handle transaction aborts.
"""

from __future__ import annotations

import enum
from collections import defaultdict

from repro.errors import DeadlockError


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class LockManager:
    """Tracks table locks per transaction."""

    def __init__(self):
        # table -> {txn_id -> LockMode}
        self._locks: dict[str, dict[int, LockMode]] = defaultdict(dict)

    def acquire(self, txn_id: int, table_name: str, mode: LockMode) -> None:
        """Grant the lock or raise :class:`DeadlockError` on conflict."""
        table = table_name.lower()
        holders = self._locks[table]
        current = holders.get(txn_id)
        if current is LockMode.EXCLUSIVE:
            return  # X subsumes everything
        if mode is LockMode.SHARED:
            for other, held in holders.items():
                if other != txn_id and held is LockMode.EXCLUSIVE:
                    raise DeadlockError(
                        f"txn {txn_id} blocked on X lock of {table!r} "
                        f"held by txn {other}")
            holders[txn_id] = current or LockMode.SHARED
            return
        # Exclusive request (possibly an upgrade from shared).
        for other in holders:
            if other != txn_id:
                raise DeadlockError(
                    f"txn {txn_id} blocked on lock of {table!r} "
                    f"held by txn {other}")
        holders[txn_id] = LockMode.EXCLUSIVE

    def release_all(self, txn_id: int) -> None:
        """Drop every lock of ``txn_id`` (commit/abort time)."""
        empty = []
        for table, holders in self._locks.items():
            holders.pop(txn_id, None)
            if not holders:
                empty.append(table)
        for table in empty:
            del self._locks[table]

    def held(self, txn_id: int, table_name: str) -> LockMode | None:
        return self._locks.get(table_name.lower(), {}).get(txn_id)

    def holders(self, table_name: str) -> dict[int, LockMode]:
        return dict(self._locks.get(table_name.lower(), {}))

    def clear(self) -> None:
        self._locks.clear()

"""Hierarchical lock manager: table locks, row locks, deadlock detection.

Two regimes, selected by ``CostModel.lock_granularity``:

* ``"table"`` (the default) preserves the seed behaviour exactly: shared
  (S) and exclusive (X) locks at table granularity, strict two-phase,
  with a *no-wait* policy — a conflicting request raises
  :class:`~repro.errors.DeadlockError` immediately and the requester is
  expected to abort and retry, matching the paper's stance that
  applications already handle transaction aborts.

* ``"row"`` enables the hierarchy: intention modes (IS/IX) at table
  granularity plus S/X locks at row granularity (keyed by table +
  primary key), still strict two-phase (everything is released only by
  :meth:`release_all` at commit/abort).  Conflicts *wait* instead of
  aborting: the requester is registered in the wait-for graph and the
  request unwinds with :class:`~repro.errors.LockWaitError` so the
  single-threaded host can park the session and retry the statement once
  a blocker finishes.  A wait that closes a cycle triggers deadlock
  detection; the youngest transaction in the cycle (largest txn id —
  ids are assigned monotonically) is the victim.  When the victim is the
  requester the request raises :class:`DeadlockError`; otherwise the
  victim is aborted through the :attr:`on_victim` callback and the
  request is re-evaluated.

Lock escalation: once a transaction holds more than
``CostModel.lock_escalation_threshold`` row locks on one table, the
manager trades them for a single table-granularity S/X lock (when no
other transaction conflicts at table level; otherwise escalation is
retried on the next acquisition).

Compatibility matrix (request column vs. held row)::

         IS    IX    S     X
    IS   yes   yes   yes   no
    IX   yes   yes   no    no
    S    yes   no    yes   no
    X    no    no    no    no

Row locks only use S and X.  Every row-lock holder also holds at least
an intention lock on the table, so table-level requests need only be
checked against table-level holders.
"""

from __future__ import annotations

import enum
from collections import defaultdict

from repro.errors import DeadlockError, LockWaitError


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"
    INTENT_SHARED = "IS"
    INTENT_EXCLUSIVE = "IX"


_IS = LockMode.INTENT_SHARED
_IX = LockMode.INTENT_EXCLUSIVE
_S = LockMode.SHARED
_X = LockMode.EXCLUSIVE

#: (held, requested) pairs that may coexist across transactions.
_COMPATIBLE: frozenset = frozenset({
    (_IS, _IS), (_IS, _IX), (_IS, _S),
    (_IX, _IS), (_IX, _IX),
    (_S, _IS), (_S, _S),
})

#: held mode -> requested modes it subsumes for the *same* transaction.
_COVERS: dict[LockMode, frozenset] = {
    _X: frozenset({_X, _S, _IX, _IS}),
    _S: frozenset({_S, _IS}),
    _IX: frozenset({_IX, _IS}),
    _IS: frozenset({_IS}),
}

#: mode pair -> the weakest mode covering both (same-transaction merge).
_SUPREMUM: dict[tuple, LockMode] = {}
for _a in LockMode:
    for _b in LockMode:
        if _b in _COVERS[_a]:
            _SUPREMUM[(_a, _b)] = _a
        elif _a in _COVERS[_b]:
            _SUPREMUM[(_a, _b)] = _b
        else:
            _SUPREMUM[(_a, _b)] = _X  # {S, IX} (and anything with X) -> X


def _compatible(held: LockMode, requested: LockMode) -> bool:
    return (held, requested) in _COMPATIBLE


def _describe_holders(conflicts: dict) -> str:
    """``"S lock ... held by txn 7"`` / ``"S,X locks ... held by txns 7, 9"``
    — reports the modes actually held (the seed always claimed an X
    blocker, which was wrong for shared->exclusive upgrades)."""
    modes = ",".join(sorted({held.value for held in conflicts.values()}))
    ids = sorted(conflicts)
    noun = "lock" if len(conflicts) == 1 else "locks"
    txns = (f"txn {ids[0]}" if len(ids) == 1
            else "txns " + ", ".join(str(i) for i in ids))
    return f"{modes} {noun}", txns


class LockManager:
    """Tracks table- and row-granularity locks per transaction."""

    def __init__(self, meter=None):
        # table -> {txn_id -> LockMode}
        self._locks: dict[str, dict[int, LockMode]] = defaultdict(dict)
        # (table, row key) -> {txn_id -> LockMode (S/X only)}
        self._row_locks: dict[tuple, dict[int, LockMode]] = {}
        # txn_id -> table -> set of row keys (release + escalation count)
        self._txn_rows: dict[int, dict[str, set]] = {}
        # (txn_id, table) pairs whose row locks were escalated away
        self._escalated: set[tuple] = set()
        # txn_id -> (frozenset of blocker txn ids, resource description)
        self._waits: dict[int, tuple] = {}
        #: most recent conflict, for schedulers: (txn_id, blocker ids,
        #: resource description) — host-side bookkeeping only.
        self.last_conflict: tuple | None = None
        #: callback(txn_id) aborting a deadlock victim that is *not* the
        #: requester (wired to the engine's transaction manager).
        self.on_victim = None
        self._meter = meter

    # -- configuration helpers ------------------------------------------------

    @property
    def granularity(self) -> str:
        if self._meter is None:
            return "table"
        return self._meter.costs.lock_granularity

    @property
    def _escalation_threshold(self) -> int:
        if self._meter is None:
            return 0
        return self._meter.costs.lock_escalation_threshold

    def _count(self, counter: str, amount: float = 1.0) -> None:
        if self._meter is not None:
            self._meter.count(counter, amount)

    # -- table-granularity requests -------------------------------------------

    def acquire(self, txn_id: int, table_name: str, mode: LockMode) -> None:
        """Grant a table-granularity lock or raise on conflict.

        Under ``"table"`` granularity a conflict raises
        :class:`DeadlockError` immediately (seed no-wait policy); under
        ``"row"`` it waits — see the module docstring.
        """
        table = table_name.lower()
        holders = self._locks[table]
        current = holders.get(txn_id)
        if current is not None and mode in _COVERS[current]:
            return
        needed = (mode if current is None
                  else _SUPREMUM[(current, mode)])
        conflicts = {other: held for other, held in holders.items()
                     if other != txn_id
                     and not _compatible(held, needed)}
        if not conflicts:
            holders[txn_id] = needed
            self._waits.pop(txn_id, None)
            return
        self._on_conflict(txn_id, conflicts, f"table {table!r}", needed)

    # -- row-granularity requests ---------------------------------------------

    def acquire_row(self, txn_id: int, table_name: str, key: tuple,
                    mode: LockMode) -> None:
        """Grant an S/X lock on one row (identified by its primary key).

        The caller must already hold at least an intention lock on the
        table.  A table-granularity S/X held by the same transaction
        (e.g. after escalation) subsumes the row lock.
        """
        table = table_name.lower()
        table_held = self._locks[table].get(txn_id)
        if table_held is not None and mode in _COVERS[table_held]:
            return
        resource = (table, key)
        holders = self._row_locks.get(resource)
        if holders is None:
            holders = self._row_locks[resource] = {}
        current = holders.get(txn_id)
        if current is not None and mode in _COVERS[current]:
            return
        needed = (mode if current is None
                  else _SUPREMUM[(current, mode)])
        conflicts = {other: held for other, held in holders.items()
                     if other != txn_id
                     and not _compatible(held, needed)}
        if not conflicts:
            holders[txn_id] = needed
            self._waits.pop(txn_id, None)
            if current is None:
                self._txn_rows.setdefault(txn_id, {}) \
                    .setdefault(table, set()).add(key)
                self._count("locks.row_locks_acquired")
            self._maybe_escalate(txn_id, table)
            return
        self._on_conflict(txn_id, conflicts,
                          f"row {key!r} of {table!r}", needed)

    # -- escalation -----------------------------------------------------------

    def _maybe_escalate(self, txn_id: int, table: str) -> None:
        threshold = self._escalation_threshold
        if threshold <= 0 or (txn_id, table) in self._escalated:
            return
        keys = self._txn_rows.get(txn_id, {}).get(table)
        if keys is None or len(keys) <= threshold:
            return
        target = _S
        for key in keys:
            if self._row_locks.get((table, key), {}).get(txn_id) is _X:
                target = _X
                break
        holders = self._locks[table]
        current = holders.get(txn_id)
        needed = target if current is None else _SUPREMUM[(current, target)]
        for other, held in holders.items():
            if other != txn_id and not _compatible(held, needed):
                return  # somebody conflicts at table level; retry later
        # Other transactions' *row* locks on this table would also
        # conflict with the escalated lock — but any such holder holds an
        # intention lock on the table, which the loop above just checked.
        holders[txn_id] = needed
        self._drop_txn_rows(txn_id, table)
        self._escalated.add((txn_id, table))
        self._count("locks.escalations")

    def _drop_txn_rows(self, txn_id: int, table: str) -> None:
        keys = self._txn_rows.get(txn_id, {}).pop(table, set())
        for key in keys:
            holders = self._row_locks.get((table, key))
            if holders is not None:
                holders.pop(txn_id, None)
                if not holders:
                    del self._row_locks[(table, key)]

    # -- conflict handling ----------------------------------------------------

    def _on_conflict(self, txn_id: int, conflicts: dict, resource: str,
                     mode: LockMode) -> None:
        """No-wait abort (table granularity) or wait/deadlock-check (row).

        Never returns.  Row mode always unwinds with ``LockWaitError``
        (the statement retries from scratch) or ``DeadlockError`` (the
        requester is the victim) — even when a *different* victim was
        just aborted, because the requester's statement may hold row
        matches the abort's undo invalidated; a clean retry re-reads.
        """
        blockers = frozenset(conflicts)
        self.last_conflict = (txn_id, sorted(blockers), resource)
        modes, txns = _describe_holders(conflicts)
        if self.granularity != "row":
            raise DeadlockError(
                f"txn {txn_id} blocked on {modes} of {resource} "
                f"held by {txns}")
        self._waits[txn_id] = (blockers, resource)
        cycle = self._find_cycle(txn_id)
        if cycle is None:
            raise LockWaitError(
                f"txn {txn_id} waiting for {mode.value} lock on "
                f"{resource}: {modes} held by {txns}")
        self._count("locks.deadlocks_detected")
        victim = max(cycle)  # youngest: txn ids are monotonic
        if victim == txn_id or self.on_victim is None:
            # Requester is the victim (or no aborter is wired, in which
            # case aborting the requester still breaks the cycle).
            self._waits.pop(txn_id, None)
            raise DeadlockError(
                f"txn {txn_id} chosen as deadlock victim (cycle: "
                f"{sorted(cycle)}; wanted {mode.value} lock on "
                f"{resource} held by {txns})")
        self.on_victim(victim)  # must end with release_all(victim)
        raise LockWaitError(
            f"txn {txn_id} waiting for {mode.value} lock on {resource}: "
            f"deadlock broken by aborting txn {victim}")

    def _find_cycle(self, start: int) -> list | None:
        """Cycle through ``start`` in the wait-for graph, or None.

        Edges run waiter -> blocker; only transactions with a registered
        wait have outgoing edges, and finished transactions have none
        (release_all deregisters them), so stale blocker references are
        dead ends, never false positives.
        """
        path: list[int] = []
        on_path: set[int] = set()

        def visit(node: int) -> list | None:
            wait = self._waits.get(node)
            if wait is None:
                return None
            path.append(node)
            on_path.add(node)
            for blocker in sorted(wait[0]):
                if blocker == start:
                    return list(path)
                if blocker in on_path:
                    continue  # a cycle not through `start`
                found = visit(blocker)
                if found is not None:
                    return found
            path.pop()
            on_path.discard(node)
            return None

        return visit(start)

    # -- release / introspection ----------------------------------------------

    def release_all(self, txn_id: int) -> None:
        """Drop every lock and wait of ``txn_id`` (commit/abort time)."""
        empty = []
        for table, holders in self._locks.items():
            holders.pop(txn_id, None)
            if not holders:
                empty.append(table)
        for table in empty:
            del self._locks[table]
        for table in list(self._txn_rows.get(txn_id, {})):
            self._drop_txn_rows(txn_id, table)
        self._txn_rows.pop(txn_id, None)
        self._escalated = {pair for pair in self._escalated
                           if pair[0] != txn_id}
        self._waits.pop(txn_id, None)

    def held(self, txn_id: int, table_name: str) -> LockMode | None:
        return self._locks.get(table_name.lower(), {}).get(txn_id)

    def holders(self, table_name: str) -> dict[int, LockMode]:
        return dict(self._locks.get(table_name.lower(), {}))

    def row_holders(self, table_name: str, key: tuple) -> dict:
        return dict(self._row_locks.get((table_name.lower(), key), {}))

    def row_lock_count(self, txn_id: int, table_name: str | None = None
                       ) -> int:
        tables = self._txn_rows.get(txn_id, {})
        if table_name is not None:
            return len(tables.get(table_name.lower(), ()))
        return sum(len(keys) for keys in tables.values())

    def waiting_for(self, txn_id: int) -> frozenset | None:
        """Blocker txn ids of a registered waiter (None if not waiting)."""
        wait = self._waits.get(txn_id)
        return wait[0] if wait is not None else None

    def waiters(self) -> dict[int, tuple]:
        """txn_id -> (blockers, resource) for every registered waiter."""
        return dict(self._waits)

    def snapshot(self) -> list[tuple]:
        """Rows for the ``sys_locks`` view: (table, granularity, lock_key,
        mode, txn_id, waiters) — waiters lists transactions currently
        registered as waiting on one of the row's holders."""
        waiting_on: dict[int, list[int]] = defaultdict(list)
        for waiter, (blockers, _resource) in sorted(self._waits.items()):
            for blocker in blockers:
                waiting_on[blocker].append(waiter)
        rows = []
        for table in sorted(self._locks):
            for txn_id, mode in sorted(self._locks[table].items()):
                rows.append((table, "table", "", mode.value, txn_id,
                             ",".join(str(w)
                                      for w in waiting_on.get(txn_id, ()))))
        for (table, key), holders in sorted(self._row_locks.items(),
                                            key=lambda kv: (kv[0][0],
                                                            repr(kv[0][1]))):
            for txn_id, mode in sorted(holders.items()):
                rows.append((table, "row", repr(key), mode.value, txn_id,
                             ",".join(str(w)
                                      for w in waiting_on.get(txn_id, ()))))
        return rows

    def clear(self) -> None:
        self._locks.clear()
        self._row_locks.clear()
        self._txn_rows.clear()
        self._escalated.clear()
        self._waits.clear()
        self.last_conflict = None

"""The crashable database server.

``DatabaseServer`` owns the durable media (disk + WAL) for its lifetime
and a *volatile* engine incarnation, sessions and open result sets.

* :meth:`crash` — power cut: the un-forced log tail and every volatile
  structure (buffer pool, sessions, temp tables, open results, in-flight
  transactions) are gone; the server stops answering.
* :meth:`restart` — builds a fresh engine which runs restart recovery
  (its I/O is charged to the meter, so "database recovery time" is real
  virtual time); the server answers again, with *no* previous sessions —
  exactly the world Phoenix has to hide from the application.

Requests arrive through :meth:`handle` (normally via
:class:`~repro.server.network.SimulatedNetwork`).
"""

from __future__ import annotations

import logging

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession
from repro.errors import ConnectionLostError, ServerDownError
from repro.server.protocol import (
    AdvanceRequest,
    AdvanceResponse,
    CloseStatementRequest,
    ConnectRequest,
    ConnectResponse,
    DisconnectRequest,
    ExecuteRequest,
    ExecuteResponse,
    FetchRequest,
    FetchResponse,
    OkResponse,
    PingRequest,
    PingResponse,
    Request,
    SetOptionRequest,
    VersionProbeRequest,
    VersionProbeResponse,
)
from repro.server.results import ServerResultSet
from repro.sim.costs import SERVER_CPU
from repro.sim.meter import Meter


logger = logging.getLogger(__name__)


class _ServerSession:
    """One connected client's volatile server state."""

    def __init__(self, token: int):
        self.token = token
        self.engine_session = EngineSession(session_id=token)
        self.results: dict[int, ServerResultSet] = {}
        self._statement_seq = 0

    def next_statement_id(self) -> int:
        self._statement_seq += 1
        return self._statement_seq


class DatabaseServer:
    """Hosts the engine behind the wire protocol."""

    def __init__(self, meter: Meter | None = None,
                 plan_cache_capacity: int = 128):
        self.meter = meter if meter is not None else Meter()
        self.engine = DatabaseEngine(
            meter=self.meter, plan_cache_capacity=plan_cache_capacity)
        self.disk = self.engine.disk
        self.wal = self.engine.wal
        self._sessions: dict[int, _ServerSession] = {}
        self._session_seq = 0
        self._running = True
        self.crashes = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def is_running(self) -> bool:
        return self._running

    def crash(self) -> None:
        """Kill the server process (``shutdown with nowait``)."""
        if not self._running:
            return
        lost_sessions = len(self._sessions)
        self.wal.crash()
        if self.engine is not None:
            self.engine.buffer_pool.crash()
        self.engine = None
        self._sessions.clear()
        self._running = False
        self.crashes += 1
        logger.info("server crashed (crash #%d): %d session(s) lost",
                    self.crashes, lost_sessions)

    def restart(self) -> None:
        """Bring the server back up, running restart recovery."""
        if self._running:
            return
        obs = self.meter.obs
        if obs.enabled:
            with obs.tracer.span("server.restart", layer="server",
                                 crash=self.crashes):
                self.engine = DatabaseEngine.restart(self.disk, self.wal,
                                                     meter=self.meter)
        else:
            self.engine = DatabaseEngine.restart(self.disk, self.wal,
                                                 meter=self.meter)
        self._running = True
        report = self.engine.last_recovery
        if report is not None:
            logger.info(
                "server restarted: redo=%d skipped=%d undo=%d losers=%s",
                report.redo_applied, report.redo_skipped,
                report.undo_applied, sorted(report.losers))

    def checkpoint(self, fuzzy: bool = False) -> None:
        self._require_up()
        if fuzzy:
            self.engine.fuzzy_checkpoint()
        else:
            self.engine.checkpoint()

    # -- request dispatch ------------------------------------------------------

    def handle(self, request: Request):
        obs = self.meter.obs
        if obs.enabled:
            with obs.tracer.span("server.handle", layer="server",
                                 request=type(request).__name__):
                return self._handle(request)
        return self._handle(request)

    def _handle(self, request: Request):
        self._require_up()
        if isinstance(request, PingRequest):
            self.meter.charge(SERVER_CPU, self.meter.costs.ping_seconds,
                              "ping")
            return PingResponse(alive=True)
        if isinstance(request, ConnectRequest):
            return self._handle_connect(request)
        if isinstance(request, DisconnectRequest):
            return self._handle_disconnect(request)
        if isinstance(request, ExecuteRequest):
            return self._handle_execute(request)
        if isinstance(request, FetchRequest):
            return self._handle_fetch(request)
        if isinstance(request, AdvanceRequest):
            return self._handle_advance(request)
        if isinstance(request, CloseStatementRequest):
            return self._handle_close(request)
        if isinstance(request, SetOptionRequest):
            return self._handle_set_option(request)
        if isinstance(request, VersionProbeRequest):
            return self._handle_version_probe(request)
        raise ValueError(f"unknown request {type(request).__name__}")

    # -- handlers -----------------------------------------------------------

    def _handle_connect(self, request: ConnectRequest) -> ConnectResponse:
        self._session_seq += 1
        session = _ServerSession(self._session_seq)
        for name, value in request.options.items():
            session.engine_session.set_option(name, value)
        self._sessions[session.token] = session
        self.engine.sessions[session.token] = session.engine_session
        return ConnectResponse(session_token=session.token)

    def _handle_disconnect(self, request: DisconnectRequest) -> OkResponse:
        session = self._sessions.pop(request.session_token, None)
        self.engine.sessions.pop(request.session_token, None)
        if session is not None:
            engine_session = session.engine_session
            if engine_session.in_transaction:
                self.engine.txns.abort(engine_session.current_txn)
        return OkResponse(message="bye")

    def _handle_execute(self, request: ExecuteRequest) -> ExecuteResponse:
        session = self._session(request.session_token)
        result = self.engine.execute(request.sql, session.engine_session,
                                     request.params)
        schema_version = self.engine.catalog.schema_version
        table_versions, dirty_tables = self._cache_piggyback(session)
        if result.kind == "rowcount":
            return ExecuteResponse(kind="rowcount",
                                   rowcount=result.rowcount,
                                   message=result.message,
                                   schema_version=schema_version,
                                   table_versions=table_versions,
                                   dirty_tables=dirty_tables)
        if result.kind == "ok":
            return ExecuteResponse(kind="ok", message=result.message,
                                   schema_version=schema_version,
                                   table_versions=table_versions,
                                   dirty_tables=dirty_tables)
        statement_id = session.next_statement_id()
        streamable = getattr(result, "streamable", False)
        open_result = ServerResultSet(statement_id, result.columns,
                                      iter(result.rows), self.meter,
                                      streamable=streamable)
        session.results[statement_id] = open_result
        try:
            open_result.fill_buffer()
        except Exception:
            # The first pull failed (e.g. a row-granularity lock wait
            # raised mid-scan): drop the half-open result set so a
            # statement retry does not leak it.
            session.results.pop(statement_id, None)
            raise
        rows = open_result.take_batch(open_result.wire_batch_rows())
        done = open_result.exhausted
        if done:
            del session.results[statement_id]
            statement_id = 0 if not rows else statement_id
        return ExecuteResponse(kind="rows", statement_id=statement_id,
                               columns=result.columns, rows=rows,
                               done=done, schema_version=schema_version,
                               read_versions=getattr(result,
                                                     "read_versions", None),
                               table_versions=table_versions,
                               dirty_tables=dirty_tables)

    def _cache_piggyback(self, session: _ServerSession):
        """Shared-result-cache response piggybacks: committed version
        bumps since the last response, plus the session's own uncommitted
        write set.  Both empty while the cache knob is off."""
        if self.meter.costs.result_cache_entries <= 0:
            return {}, []
        table_versions = self.engine.pop_version_updates()
        engine_session = session.engine_session
        dirty_tables: list = []
        if engine_session.in_transaction:
            dirty_tables = sorted(
                engine_session.current_txn.modified_tables)
        return table_versions, dirty_tables

    def _handle_fetch(self, request: FetchRequest) -> FetchResponse:
        session = self._session(request.session_token)
        open_result = session.results.get(request.statement_id)
        if open_result is None:
            return FetchResponse(rows=[], done=True)
        open_result.note_fetch()
        try:
            open_result.fill_buffer()
        except Exception:
            # A lazy pull failed mid-result (row-granularity lock wait or
            # deadlock): the cursor position is unrecoverable, so close
            # the result — the client retries the whole statement.
            session.results.pop(request.statement_id, None)
            raise
        max_rows = request.max_rows
        if max_rows is None:
            max_rows = open_result.wire_batch_rows()
        rows = open_result.take_batch(max_rows)
        done = open_result.exhausted
        if done:
            session.results.pop(request.statement_id, None)
        return FetchResponse(rows=rows, done=done)

    def _handle_advance(self, request: AdvanceRequest) -> AdvanceResponse:
        session = self._session(request.session_token)
        open_result = session.results.get(request.statement_id)
        if open_result is None:
            return AdvanceResponse(skipped=0, done=True)
        skipped = open_result.skip_rows(request.count)
        return AdvanceResponse(skipped=skipped, done=open_result.exhausted)

    def _handle_close(self, request: CloseStatementRequest) -> OkResponse:
        session = self._session(request.session_token)
        session.results.pop(request.statement_id, None)
        return OkResponse(message="closed")

    def _handle_set_option(self, request: SetOptionRequest) -> OkResponse:
        session = self._session(request.session_token)
        session.engine_session.set_option(request.name, request.value)
        return OkResponse(message="option set")

    def _handle_version_probe(
            self, request: VersionProbeRequest) -> VersionProbeResponse:
        self._session(request.session_token)
        self.meter.charge(SERVER_CPU, self.meter.costs.ping_seconds,
                          "version probe")
        return VersionProbeResponse(
            versions=dict(self.engine.catalog.dml_versions))

    # -- helpers ---------------------------------------------------------------

    def _session(self, token: int) -> _ServerSession:
        session = self._sessions.get(token)
        if session is None:
            raise ConnectionLostError(
                f"session {token} does not exist (server restarted?)")
        return session

    def _require_up(self) -> None:
        if not self._running:
            raise ServerDownError("server is down")

    def open_session_count(self) -> int:
        return len(self._sessions)

"""The simulated network between driver and server.

``SimulatedNetwork.call`` is the only way a driver reaches a server: it
charges the request's uplink (RTT half + transfer), dispatches to the
server, charges the response's downlink, and translates server death into
the errors a real driver would surface:

* server down before the request → :class:`ServerDownError` (connection
  refused — fast);
* server crashes *while processing* → :class:`ServerCrashedError` after a
  driver-timeout delay (the client was left "waiting for the server to
  respond to its fetch request", §3.4).

``call_overlapped`` is the pipelined variant used by fetch-ahead and the
Phoenix persist pipeline: the uplink is charged as the client sends (the
client serializes its own sends), while server processing and the
response downlink run inside a :meth:`~repro.sim.meter.Meter.begin_overlap`
window — recorded as real resource usage, but not clocked.  The caller
receives the request's total deferred service time and charges only the
unoverlapped remainder (``max(0, completion - now)``) when it
synchronizes, which is how overlapping delivery with client compute is
modeled deterministically.

Every exchange is mirrored into the world's metrics registry
(``net.requests_sent``, up/down wire bytes, per-request-kind counts) so
the ``sys_network`` view can report round-trip traffic; the plain
attributes (``requests_sent``, ``wire_bytes_up``, ...) remain for tests
that count requests without an engine in reach.

A fault injector hook lets tests and experiments crash the server at
exact request boundaries or mid-request.
"""

from __future__ import annotations

from repro.errors import ServerCrashedError, ServerDownError
from repro.sim.costs import CLIENT_CPU, NETWORK
from repro.sim.meter import Meter


class SimulatedNetwork:
    """Connects drivers to a server with virtual-time costs."""

    def __init__(self, meter: Meter, request_timeout_seconds: float = 5.0):
        self._meter = meter
        self.request_timeout_seconds = request_timeout_seconds
        #: Optional callable(request) invoked before dispatch; it may call
        #: ``server.crash()`` to simulate a crash while the request is in
        #: flight (the driver then times out).
        self.fault_injector = None
        self.requests_sent = 0
        self.wire_bytes_up = 0
        self.wire_bytes_down = 0
        #: Ledger entry of the most recent successful ``call_overlapped``
        #: (None when the latency ledger is off).  The driver takes it
        #: and rides it on the in-flight batch so the realized stall —
        #: or the crash discard — lands in the right entry.
        self.last_overlapped_entry = None

    def call(self, server, request):
        """One request/response exchange; returns the response object."""
        meter = self._meter
        entry = meter.latency_open(type(request).__name__)
        try:
            self._send(server, request)
            return self._serve(server, request)
        finally:
            meter.latency_close(entry)

    def call_overlapped(self, server, request) -> tuple:
        """Pipelined exchange: ``(response, deferred service seconds)``.

        The uplink is charged to the clock now; the server's processing
        and the response downlink are recorded inside an overlap window
        and returned as seconds for the caller to realize at its next
        synchronization point.  A transport failure is realized
        synchronously (the clock advances by whatever the failed attempt
        recorded, exactly as a blocking call would have charged) and
        re-raised, so error behaviour is identical to :meth:`call`.

        In multi-stream worlds (``meter.advance_clock`` False) elapsed
        time belongs to the queueing simulator, so this degrades to a
        plain synchronous call with zero deferred service.
        """
        meter = self._meter
        if not meter.advance_clock:
            return self.call(server, request), 0.0
        entry = meter.latency_open(type(request).__name__)
        try:
            self._send(server, request)
            sink = meter.begin_overlap()
            try:
                response = self._serve(server, request)
            except BaseException:
                # Failure is observed synchronously: realize the
                # recorded charges (timeout wait, ...) on the clock and
                # re-raise.  The raw advance bypasses ``charge``, so the
                # ledger books it explicitly — the client spent it
                # waiting on the failed exchange.
                seconds = meter.end_overlap(sink)
                if seconds > 0:
                    meter.clock.advance(seconds)
                    meter.latency_attribute(entry, "server_queue", seconds)
                raise
        except BaseException:
            meter.latency_close(entry)
            raise
        service = meter.end_overlap(sink)
        # Success: the entry stays open — its latency is not known until
        # the driver realizes the batch's stall (or discards it).
        meter.latency_detach(entry)
        self.last_overlapped_entry = entry
        return response, service

    # -- the two halves of an exchange --------------------------------------

    def _send(self, server, request) -> None:
        """Book the request and charge its uplink; raises if refused."""
        self.requests_sent += 1
        meter = self._meter
        costs = meter.costs
        kind = type(request).__name__
        up_bytes = request.wire_bytes()
        self.wire_bytes_up += up_bytes
        meter.count("net.requests_sent")
        meter.count(f"net.requests.{kind}")
        meter.count("net.wire_bytes_up", up_bytes)
        meter.count(f"net.bytes_up.{kind}", up_bytes)
        if self.fault_injector is not None:
            self.fault_injector(request)
        if not server.is_running:
            # Connection refused: one RTT to learn nobody is listening.
            meter.charge(NETWORK, costs.network_rtt_seconds, "refused")
            raise ServerDownError("server is not running")
        meter.charge(
            NETWORK,
            costs.network_rtt_seconds + self._transfer(up_bytes),
            "request")

    def _serve(self, server, request):
        """Dispatch to the server and charge the response downlink."""
        meter = self._meter
        if not server.is_running:
            # Crashed while the request was in flight: the client waits
            # out its driver timeout before the error surfaces.
            meter.charge(CLIENT_CPU, self.request_timeout_seconds,
                         "request timeout")
            raise ServerCrashedError("server crashed during request")
        try:
            response = server.handle(request)
        except ServerCrashedError:
            meter.charge(CLIENT_CPU, self.request_timeout_seconds,
                         "request timeout")
            raise
        down_bytes = response.wire_bytes()
        self.wire_bytes_down += down_bytes
        meter.count("net.wire_bytes_down", down_bytes)
        meter.count(f"net.bytes_down.{type(request).__name__}", down_bytes)
        meter.charge(NETWORK, self._transfer(down_bytes), "response")
        return response

    def _transfer(self, num_bytes: int) -> float:
        costs = self._meter.costs
        packets = max(1, -(-num_bytes // costs.packet_bytes))
        return (packets * costs.network_message_overhead_seconds
                + num_bytes / costs.network_bytes_per_second)

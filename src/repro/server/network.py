"""The simulated network between driver and server.

``SimulatedNetwork.call`` is the only way a driver reaches a server: it
charges the request's uplink (RTT half + transfer), dispatches to the
server, charges the response's downlink, and translates server death into
the errors a real driver would surface:

* server down before the request → :class:`ServerDownError` (connection
  refused — fast);
* server crashes *while processing* → :class:`ServerCrashedError` after a
  driver-timeout delay (the client was left "waiting for the server to
  respond to its fetch request", §3.4).

A fault injector hook lets tests and experiments crash the server at
exact request boundaries or mid-request.
"""

from __future__ import annotations

from repro.errors import ServerCrashedError, ServerDownError
from repro.sim.costs import CLIENT_CPU, NETWORK
from repro.sim.meter import Meter


class SimulatedNetwork:
    """Connects drivers to a server with virtual-time costs."""

    def __init__(self, meter: Meter, request_timeout_seconds: float = 5.0):
        self._meter = meter
        self.request_timeout_seconds = request_timeout_seconds
        #: Optional callable(request) invoked before dispatch; it may call
        #: ``server.crash()`` to simulate a crash while the request is in
        #: flight (the driver then times out).
        self.fault_injector = None
        self.requests_sent = 0

    def call(self, server, request):
        """One request/response exchange; returns the response object."""
        self.requests_sent += 1
        costs = self._meter.costs
        if self.fault_injector is not None:
            self.fault_injector(request)
        if not server.is_running:
            # Connection refused: one RTT to learn nobody is listening.
            self._meter.charge(NETWORK, costs.network_rtt_seconds,
                               "refused")
            raise ServerDownError("server is not running")
        self._meter.charge(
            NETWORK,
            costs.network_rtt_seconds + self._transfer(request.wire_bytes()),
            "request")
        if not server.is_running:
            # Crashed while the request was in flight: the client waits
            # out its driver timeout before the error surfaces.
            self._meter.charge(CLIENT_CPU, self.request_timeout_seconds,
                               "request timeout")
            raise ServerCrashedError("server crashed during request")
        try:
            response = server.handle(request)
        except ServerCrashedError:
            self._meter.charge(CLIENT_CPU, self.request_timeout_seconds,
                               "request timeout")
            raise
        self._meter.charge(NETWORK, self._transfer(response.wire_bytes()),
                           "response")
        return response

    def _transfer(self, num_bytes: int) -> float:
        costs = self._meter.costs
        packets = max(1, -(-num_bytes // costs.packet_bytes))
        return (packets * costs.network_message_overhead_seconds
                + num_bytes / costs.network_bytes_per_second)

"""Server-side open result sets with bounded output buffering.

A ``ServerResultSet`` wraps the engine's lazy row iterator.  The server
pulls rows into the output buffer until the buffer holds
``output_buffer_bytes`` worth of rows, then *suspends the scan* — exactly
the behaviour the paper's SQL Server Profiler session revealed ("once the
network buffer reaches capacity, the scan for data is suspended because
no space is available to add rows").  Each :class:`FetchRequest` drains
the buffer to the client and resumes the scan for the next batch.

Production costs (charged as rows are pulled):

* pipelined query results pay ``cpu_per_result_byte_seconds`` per row
  byte — the server is running the operator tree per row;
* *streamable* results (a bare ``SELECT * FROM table``, e.g. Phoenix
  reopening a materialized result table) pay only ``page_send_seconds``
  per page — the server forwards stored pages without re-evaluating a
  query, which is the paper's explanation for Phoenix's cheaper delivery.

The row *wire* cost is charged by the network layer on the response that
carries the batch, so nothing is double counted.
"""

from __future__ import annotations

from repro.sim.costs import SERVER_CPU
from repro.sim.meter import Meter
from repro.types import Column


class ServerResultSet:
    """One open statement's row stream plus its output buffer."""

    def __init__(self, statement_id: int, columns: list[Column],
                 iterator, meter: Meter, streamable: bool = False):
        self.statement_id = statement_id
        self.columns = columns
        self._iterator = iterator
        self._meter = meter
        self.streamable = streamable
        self._buffer: list[tuple] = []
        self._buffer_bytes = 0
        self.done = False
        self.rows_produced = 0
        #: FetchRequests served against this result; drives the adaptive
        #: wire batch (each successive fetch proves the client drained
        #: everything shipped so far).
        self.fetches = 0
        #: Adaptive refill target: starts at the paper's fixed
        #: suspended-scan buffer and, when ``output_buffer_max_bytes``
        #: allows, doubles each time the consumer drains the buffer dry.
        self._fill_limit = meter.costs.output_buffer_bytes
        #: Declared row width — CHAR columns count at their declared
        #: length even though values are stored unpadded.
        self._row_width = max(1, sum(c.width_bytes for c in columns) or 1)
        self._rows_per_page = max(
            1, meter.costs.page_size_bytes // self._row_width)

    # -- production ----------------------------------------------------------

    def fill_buffer(self) -> None:
        """Pull rows until the output buffer is full or the stream ends."""
        costs = self._meter.costs
        limit = self._fill_limit
        while not self.done and self._buffer_bytes < limit:
            try:
                row = next(self._iterator)
            except StopIteration:
                self.done = True
                return
            width = self._row_width
            if self.streamable:
                if self.rows_produced % self._rows_per_page == 0:
                    self._meter.charge(SERVER_CPU, costs.page_send_seconds,
                                       "page stream")
            else:
                self._meter.charge(
                    SERVER_CPU, width * costs.cpu_per_result_byte_seconds,
                    "result row")
            self._buffer.append(row)
            self._buffer_bytes += width
            self.rows_produced += 1

    # -- consumption ----------------------------------------------------------

    def take_batch(self, max_rows: int | None = None) -> list[tuple]:
        """Hand the buffered rows to the wire (they leave the buffer)."""
        if max_rows is None or max_rows >= len(self._buffer):
            batch = self._buffer
            self._buffer = []
            self._buffer_bytes = 0
            return batch
        batch = self._buffer[:max_rows]
        self._buffer = self._buffer[max_rows:]
        self._buffer_bytes = len(self._buffer) * self._row_width
        return batch

    def skip_rows(self, count: int) -> int:
        """Advance past ``count`` rows server-side (no delivery costs
        beyond per-tuple scan work, which the iterator charges itself).

        This implements the §3.4 repositioning stored procedure.
        """
        skipped = 0
        while skipped < count:
            if self._buffer:
                take = min(count - skipped, len(self._buffer))
                del self._buffer[:take]
                skipped += take
                self._buffer_bytes = len(self._buffer) * self._row_width
                continue
            try:
                next(self._iterator)
            except StopIteration:
                self.done = True
                break
            self.rows_produced += 1
            skipped += 1
        return skipped

    def note_fetch(self) -> None:
        """Record one client :class:`FetchRequest` against this result.

        A fetch that finds the buffer already drained means the consumer
        is keeping up with the scan; when ``output_buffer_max_bytes``
        permits, the refill target doubles toward that cap so the
        suspended scan stalls less often.  Streamable Phoenix re-opens
        benefit most: their pages are forwarded without re-running a
        query, so a bigger buffer is almost pure win.
        """
        self.fetches += 1
        cap = self._meter.costs.output_buffer_max_bytes
        if cap > self._fill_limit and not self._buffer:
            self._fill_limit = min(cap, self._fill_limit * 2)

    def wire_batch_rows(self) -> int:
        """Rows the next wire batch should carry.

        With ``fetch_batch_max_bytes`` unset this is the fixed seed batch
        (= :attr:`client_batch_rows`).  With the cap set, the batch
        doubles on every successive fetch of this result — the client
        demonstrably drained everything shipped so far — up to the cap.
        """
        costs = self._meter.costs
        batch_bytes = costs.client_fetch_batch_bytes
        cap = costs.fetch_batch_max_bytes
        if cap > batch_bytes:
            batch_bytes = min(cap, batch_bytes << min(self.fetches, 24))
        return max(1, batch_bytes // self._row_width)

    @property
    def client_batch_rows(self) -> int:
        """How many rows one fixed-size wire batch carries to the client."""
        return max(1, self._meter.costs.client_fetch_batch_bytes
                   // self._row_width)

    @property
    def buffered_rows(self) -> int:
        return len(self._buffer)

    @property
    def exhausted(self) -> bool:
        return self.done and not self._buffer

"""Wire protocol messages between the ODBC driver and the server.

A deliberately TDS-flavoured request/response protocol.  Requests carry a
``session_token``; responses are plain dataclasses.  Errors surface as
exceptions from :meth:`DatabaseServer.handle` (the network layer converts
a dead server into :class:`~repro.errors.ServerDownError` /
:class:`~repro.errors.ServerCrashedError`, which is what the native
driver reports and Phoenix intercepts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.types import Column, value_width_bytes


class Request:
    """Base class; ``wire_bytes`` sizes the request for transfer costs."""

    __slots__ = ()

    def wire_bytes(self) -> int:
        return 32


@dataclass(slots=True)
class ConnectRequest(Request):
    login: str = "app"
    database: str = "default"
    options: dict = field(default_factory=dict)

    def wire_bytes(self) -> int:
        return 64 + 16 * len(self.options)


@dataclass(slots=True)
class DisconnectRequest(Request):
    session_token: int = 0


@dataclass(slots=True)
class ExecuteRequest(Request):
    session_token: int = 0
    sql: str = ""
    params: dict = field(default_factory=dict)

    def wire_bytes(self) -> int:
        return 32 + len(self.sql) + 16 * len(self.params)


@dataclass(slots=True)
class FetchRequest(Request):
    """Ask the server to refill the row stream of an open statement.

    ``speculative`` marks a fetch-ahead request the driver issued before
    the application asked for the rows.  It is observability-only — the
    server answers identically and it adds no wire bytes (the flag rides
    in the fixed 32-byte header).
    """

    session_token: int = 0
    statement_id: int = 0
    max_rows: int | None = None
    speculative: bool = False


@dataclass(slots=True)
class AdvanceRequest(Request):
    """Server-side repositioning: skip ``count`` rows of an open statement
    without shipping them to the client.

    This models the stored procedure of §3.4: "a stored procedure that
    advances to a specified tuple in a table, hence advancing through the
    result set on the server without passing tuples to the client".
    """

    session_token: int = 0
    statement_id: int = 0
    count: int = 0


@dataclass(slots=True)
class CloseStatementRequest(Request):
    session_token: int = 0
    statement_id: int = 0


@dataclass(slots=True)
class SetOptionRequest(Request):
    session_token: int = 0
    name: str = ""
    value: object = None


@dataclass(slots=True)
class PingRequest(Request):
    pass


@dataclass(slots=True)
class VersionProbeRequest(Request):
    """Ask for the server's current per-table DML version vector.

    The shared result cache's revalidation probe: after a reconnect (or
    any cache-epoch change) the driver manager fetches the committed
    version of every table instead of re-executing cached statements —
    one round trip revalidates the whole cache.
    """

    session_token: int = 0


# -- responses ---------------------------------------------------------------


@dataclass(slots=True)
class ConnectResponse:
    session_token: int

    def wire_bytes(self) -> int:
        return 32


@dataclass(slots=True)
class ExecuteResponse:
    """Result header plus the first buffered batch of rows."""

    kind: str  # 'rows' | 'rowcount' | 'ok'
    statement_id: int = 0
    columns: list[Column] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    done: bool = True            # row stream exhausted?
    rowcount: int = -1
    message: str = ""
    #: Server catalog generation at execution time; rides in the existing
    #: header (the 32-byte meta block already has room), so it adds no
    #: wire bytes.  Clients use it to invalidate metadata caches.
    schema_version: int = 0
    #: Shared-result-cache piggybacks (all empty/None while the cache
    #: knob is off, keeping the seed wire sizes bit-identical):
    #: ``read_versions`` stamps a SELECT's result with the DML version of
    #: every table its plan read (None = result not shareable);
    #: ``table_versions`` carries the version bumps committed since the
    #: last response, so every round trip doubles as an invalidation
    #: broadcast; ``dirty_tables`` lists the tables the session's own
    #: uncommitted transaction has written (read-your-writes bypass).
    read_versions: dict | None = None
    table_versions: dict = field(default_factory=dict)
    dirty_tables: list = field(default_factory=list)

    def wire_bytes(self) -> int:
        meta = 32 + 16 * len(self.columns)
        data = sum(sum(map(value_width_bytes, row)) for row in self.rows)
        piggyback = 12 * (len(self.read_versions or ())
                          + len(self.table_versions)
                          + len(self.dirty_tables))
        return meta + data + piggyback


@dataclass(slots=True)
class FetchResponse:
    rows: list[tuple] = field(default_factory=list)
    done: bool = True

    def wire_bytes(self) -> int:
        return 16 + sum(sum(map(value_width_bytes, row))
                        for row in self.rows)


@dataclass(slots=True)
class AdvanceResponse:
    skipped: int = 0
    done: bool = False

    def wire_bytes(self) -> int:
        return 16


@dataclass(slots=True)
class OkResponse:
    message: str = ""

    def wire_bytes(self) -> int:
        return 16


@dataclass(slots=True)
class PingResponse:
    alive: bool = True

    def wire_bytes(self) -> int:
        return 8


@dataclass(slots=True)
class VersionProbeResponse:
    """The server's committed per-table DML version vector."""

    versions: dict = field(default_factory=dict)

    def wire_bytes(self) -> int:
        return 16 + 12 * len(self.versions)

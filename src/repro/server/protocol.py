"""Wire protocol messages between the ODBC driver and the server.

A deliberately TDS-flavoured request/response protocol.  Requests carry a
``session_token``; responses are plain dataclasses.  Errors surface as
exceptions from :meth:`DatabaseServer.handle` (the network layer converts
a dead server into :class:`~repro.errors.ServerDownError` /
:class:`~repro.errors.ServerCrashedError`, which is what the native
driver reports and Phoenix intercepts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.types import Column, value_width_bytes


class Request:
    """Base class; ``wire_bytes`` sizes the request for transfer costs."""

    __slots__ = ()

    def wire_bytes(self) -> int:
        return 32


@dataclass(slots=True)
class ConnectRequest(Request):
    login: str = "app"
    database: str = "default"
    options: dict = field(default_factory=dict)

    def wire_bytes(self) -> int:
        return 64 + 16 * len(self.options)


@dataclass(slots=True)
class DisconnectRequest(Request):
    session_token: int = 0


@dataclass(slots=True)
class ExecuteRequest(Request):
    session_token: int = 0
    sql: str = ""
    params: dict = field(default_factory=dict)

    def wire_bytes(self) -> int:
        return 32 + len(self.sql) + 16 * len(self.params)


@dataclass(slots=True)
class FetchRequest(Request):
    """Ask the server to refill the row stream of an open statement.

    ``speculative`` marks a fetch-ahead request the driver issued before
    the application asked for the rows.  It is observability-only — the
    server answers identically and it adds no wire bytes (the flag rides
    in the fixed 32-byte header).
    """

    session_token: int = 0
    statement_id: int = 0
    max_rows: int | None = None
    speculative: bool = False


@dataclass(slots=True)
class AdvanceRequest(Request):
    """Server-side repositioning: skip ``count`` rows of an open statement
    without shipping them to the client.

    This models the stored procedure of §3.4: "a stored procedure that
    advances to a specified tuple in a table, hence advancing through the
    result set on the server without passing tuples to the client".
    """

    session_token: int = 0
    statement_id: int = 0
    count: int = 0


@dataclass(slots=True)
class CloseStatementRequest(Request):
    session_token: int = 0
    statement_id: int = 0


@dataclass(slots=True)
class SetOptionRequest(Request):
    session_token: int = 0
    name: str = ""
    value: object = None


@dataclass(slots=True)
class PingRequest(Request):
    pass


# -- responses ---------------------------------------------------------------


@dataclass(slots=True)
class ConnectResponse:
    session_token: int

    def wire_bytes(self) -> int:
        return 32


@dataclass(slots=True)
class ExecuteResponse:
    """Result header plus the first buffered batch of rows."""

    kind: str  # 'rows' | 'rowcount' | 'ok'
    statement_id: int = 0
    columns: list[Column] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    done: bool = True            # row stream exhausted?
    rowcount: int = -1
    message: str = ""
    #: Server catalog generation at execution time; rides in the existing
    #: header (the 32-byte meta block already has room), so it adds no
    #: wire bytes.  Clients use it to invalidate metadata caches.
    schema_version: int = 0

    def wire_bytes(self) -> int:
        meta = 32 + 16 * len(self.columns)
        data = sum(sum(map(value_width_bytes, row)) for row in self.rows)
        return meta + data


@dataclass(slots=True)
class FetchResponse:
    rows: list[tuple] = field(default_factory=list)
    done: bool = True

    def wire_bytes(self) -> int:
        return 16 + sum(sum(map(value_width_bytes, row))
                        for row in self.rows)


@dataclass(slots=True)
class AdvanceResponse:
    skipped: int = 0
    done: bool = False

    def wire_bytes(self) -> int:
        return 16


@dataclass(slots=True)
class OkResponse:
    message: str = ""

    def wire_bytes(self) -> int:
        return 16


@dataclass(slots=True)
class PingResponse:
    alive: bool = True

    def wire_bytes(self) -> int:
        return 8

"""The client-server substrate: protocol, simulated network, server.

This layer turns the engine into a *crashable server*: sessions and open
result sets are volatile, the disk and forced log survive
:meth:`DatabaseServer.crash`, and :meth:`DatabaseServer.restart` runs
restart recovery.  The network model charges RTTs, per-packet transfer
time, and implements the bounded output buffer whose saturation produces
the paper's Table 3 artifact.
"""

from repro.server.network import SimulatedNetwork
from repro.server.protocol import (
    AdvanceRequest,
    CloseStatementRequest,
    ConnectRequest,
    DisconnectRequest,
    ExecuteRequest,
    FetchRequest,
    PingRequest,
    SetOptionRequest,
)
from repro.server.server import DatabaseServer

__all__ = [
    "DatabaseServer",
    "SimulatedNetwork",
    "ConnectRequest",
    "DisconnectRequest",
    "ExecuteRequest",
    "FetchRequest",
    "AdvanceRequest",
    "CloseStatementRequest",
    "SetOptionRequest",
    "PingRequest",
]

"""The database engine facade.

``DatabaseEngine`` wires storage, WAL, transactions and the SQL frontend
together and executes statements under an :class:`EngineSession`.  It is
also the *target* interface for restart recovery and online rollback
(``heap_for_file`` / ``redo_*`` / ``undo_action`` / ``rebuild_indexes``).

Crash model: the engine object is volatile.  The server keeps the
:class:`SimulatedDisk` and :class:`WriteAheadLog` across a crash and calls
:meth:`DatabaseEngine.restart` to build a fresh engine, which restores the
catalog from the last checkpoint snapshot and runs ARIES-lite recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.results import StatementResult
from repro.engine.session import EngineSession
from repro.engine.table import Table
from repro.errors import (
    DeadlockError,
    EngineError,
    PlanningError,
    TableNotFoundError,
    TransactionError,
)
from repro.errors import SqlSyntaxError
from repro.obs.views import SYSTEM_VIEWS, system_view
from repro.sim.costs import SERVER_CPU, SERVER_DISK
from repro.sim.meter import Meter
from repro.sql import ast
from repro.sql.executor import is_streamable_plan, iterate_plan
from repro.sql.expressions import EvalContext
from repro.sql.parser import parse_script, parse_statement
from repro.sql.plan_cache import (
    CachedStatement,
    LRUCache,
    PlanCacheEntry,
    _type_signature,
    normalize_statement,
)
from repro.sql.planner import Planner
from repro.storage.buffer_pool import BufferPool
from repro.storage.catalog import Catalog, TableInfo
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile, RowId
from repro.txn.locks import LockManager, LockMode
from repro.txn.manager import Transaction, TransactionManager
from repro.types import Column, SqlType, coerce_column, row_width_bytes
from repro.wal.log import WriteAheadLog
from repro.wal.records import (
    BeginCheckpointRecord,
    CheckpointRecord,
    DeleteRecord,
    EndCheckpointRecord,
    InsertRecord,
    LogRecord,
    UpdateRecord,
)
from repro.wal.recovery import RecoveryManager, RecoveryReport

_TYPE_ALIASES = {
    "INT": SqlType.INTEGER, "INTEGER": SqlType.INTEGER,
    "SMALLINT": SqlType.INTEGER, "TINYINT": SqlType.INTEGER,
    "BIGINT": SqlType.BIGINT,
    "FLOAT": SqlType.FLOAT, "REAL": SqlType.FLOAT,
    "DOUBLE": SqlType.FLOAT,
    "DECIMAL": SqlType.DECIMAL, "NUMERIC": SqlType.DECIMAL,
    "MONEY": SqlType.DECIMAL,
    "VARCHAR": SqlType.VARCHAR, "TEXT": SqlType.VARCHAR,
    "STRING": SqlType.VARCHAR,  # the paper's CREATE PROCEDURE P (@T string)
    "CHAR": SqlType.CHAR, "CHARACTER": SqlType.CHAR,
    "DATE": SqlType.DATE, "DATETIME": SqlType.DATE,
}


@system_view("sys_tables")
def _sys_tables(engine: "DatabaseEngine"):
    columns = [Column("name", SqlType.VARCHAR, 64),
               Column("table_id", SqlType.INTEGER),
               Column("file_id", SqlType.INTEGER),
               Column("column_count", SqlType.INTEGER)]
    rows = [(t.name, t.table_id, t.file_id, len(t.columns))
            for t in engine.catalog.tables.values() if not t.volatile]
    return columns, rows


@system_view("sys_columns")
def _sys_columns(engine: "DatabaseEngine"):
    columns = [Column("table_name", SqlType.VARCHAR, 64),
               Column("name", SqlType.VARCHAR, 64),
               Column("type_name", SqlType.VARCHAR, 16),
               Column("length", SqlType.INTEGER),
               Column("nullable", SqlType.INTEGER),
               Column("position", SqlType.INTEGER)]
    rows = [(t.name, c.name, c.sql_type.value, c.length,
             int(c.nullable), i + 1)
            for t in engine.catalog.tables.values() if not t.volatile
            for i, c in enumerate(t.columns)]
    return columns, rows


@system_view("sys_indexes")
def _sys_indexes(engine: "DatabaseEngine"):
    columns = [Column("name", SqlType.VARCHAR, 64),
               Column("table_name", SqlType.VARCHAR, 64),
               Column("column_names", SqlType.VARCHAR, 128),
               Column("is_unique", SqlType.INTEGER),
               Column("entries", SqlType.INTEGER)]
    rows = []
    for ix in engine.catalog.indexes.values():
        # Entry counts come from the live B-tree when the table runtime
        # is already materialized; NULL otherwise — the view must not
        # force a heap load just to count keys.
        runtime = engine._tables.get(ix.table_name)
        entries = None
        if runtime is not None and runtime.has_index(ix.name):
            entries = len(runtime.index_tree(ix.name))
        rows.append((ix.name, ix.table_name, ", ".join(ix.column_names),
                     int(ix.unique), entries))
    # Implicit primary-key indexes live on the runtime, not the catalog;
    # list the materialized ones so every live B-tree is accounted for.
    for runtime in engine._tables.values():
        for info in runtime.indexes():
            if info.name.startswith("__pk_"):
                rows.append((info.name, info.table_name,
                             ", ".join(info.column_names),
                             int(info.unique),
                             len(runtime.index_tree(info.name))))
    return columns, rows


@system_view("sys_table_stats")
def _sys_table_stats(engine: "DatabaseEngine"):
    """ANALYZE output: one row per analyzed column (plus the table's
    row/page counts), straight from the catalog's persisted stats."""
    columns = [Column("table_name", SqlType.VARCHAR, 64),
               Column("column_name", SqlType.VARCHAR, 64),
               Column("row_count", SqlType.INTEGER),
               Column("page_count", SqlType.INTEGER),
               Column("ndv", SqlType.INTEGER),
               Column("null_frac", SqlType.FLOAT),
               Column("min_value", SqlType.VARCHAR, 64),
               Column("max_value", SqlType.VARCHAR, 64),
               Column("histogram_buckets", SqlType.INTEGER),
               Column("stats_version", SqlType.INTEGER)]
    rows = []
    for name in sorted(engine.catalog.table_stats):
        stats = engine.catalog.table_stats[name]
        version = engine.catalog.stats_version_of(name)
        for col_name, col in stats.get("columns", {}).items():
            hist = col.get("histogram")
            rows.append((name, col_name, stats.get("row_count", 0),
                         stats.get("page_count", 0), col.get("ndv", 0),
                         col.get("null_frac", 0.0),
                         None if col.get("min") is None
                         else str(col["min"]),
                         None if col.get("max") is None
                         else str(col["max"]),
                         0 if not hist else len(hist) - 1, version))
    return columns, rows


@system_view("sys_procedures")
def _sys_procedures(engine: "DatabaseEngine"):
    columns = [Column("name", SqlType.VARCHAR, 64),
               Column("param_count", SqlType.INTEGER)]
    rows = [(p.name, len(p.param_names))
            for p in engine.catalog.procedures.values()]
    return columns, rows


@system_view("sys_views")
def _sys_views(engine: "DatabaseEngine"):
    columns = [Column("name", SqlType.VARCHAR, 64),
               Column("definition", SqlType.VARCHAR, 512)]
    rows = [(v.name, v.body_sql) for v in engine.catalog.views.values()]
    return columns, rows


# The observability views (sys_traces, sys_metrics, sys_recovery_phases,
# sys_plan_cache) register themselves into the same SYSTEM_VIEWS registry
# when repro.obs.views is imported above.


@dataclass
class _CompiledDml:
    """Host-side compiled form of one DML statement (plan-cache payload).

    Bakes in the target :class:`Table` runtime and the statement's
    compiled closures so a repeat execution skips re-planning entirely.
    Revalidation (catalog versions, temp-table identity) is the enclosing
    :class:`PlanCacheEntry`'s job, exactly as for cached SELECT plans —
    the per-statement parse/plan *virtual* charge is still levied every
    execution, so cached and cold runs meter identically.
    """

    kind: str                           # "insert" | "update" | "delete"
    table: Table
    iterate: object = None              # UPDATE/DELETE row-source factory
    assignments: list = field(default_factory=list)   # (position, fn)
    target_columns: list = field(default_factory=list)
    column_positions: list = field(default_factory=list)
    row_fns: list = field(default_factory=list)   # VALUES row closures
    select_plan: object = None          # INSERT ... SELECT source plan


class DatabaseEngine:
    """Executes SQL statements against the storage substrate."""

    def __init__(self, meter: Meter | None = None,
                 disk: SimulatedDisk | None = None,
                 wal: WriteAheadLog | None = None,
                 recover: bool = False,
                 plan_cache_capacity: int = 128):
        self.meter = meter if meter is not None else Meter()
        self.disk = disk if disk is not None else SimulatedDisk()
        self.wal = wal if wal is not None else WriteAheadLog(self.meter)
        self.wal.attach_meter(self.meter)
        self.buffer_pool = BufferPool(self.disk, self.meter, wal=self.wal)
        self.locks = LockManager(meter=self.meter)
        self.locks.on_victim = self._abort_deadlock_victim
        if recover:
            self.catalog = Catalog.restore(
                self.disk.read_blob("catalog_snapshot"))
            # ANALYZE persists statistics in their own blob the moment
            # they are collected (unlike DDL they are not WAL-logged), so
            # stats taken after the last checkpoint still survive a crash.
            stats_blob = self.disk.read_blob("table_stats_snapshot")
            if stats_blob:
                self.catalog.table_stats.update(
                    stats_blob.get("table_stats", {}))
                self.catalog.stats_versions.update(
                    stats_blob.get("stats_versions", {}))
        else:
            self.catalog = Catalog()
        self._tables: dict[str, Table] = {}
        self._volatile_seq = 0
        # Statement/plan caches — a host-time optimization only: every
        # virtual charge (parse/plan CPU included) is still levied per
        # execution, so cached and cold runs meter identically.  Pass
        # ``plan_cache_capacity=0`` to disable (the wall-clock baseline).
        self.plan_cache_enabled = plan_cache_capacity > 0
        cap = plan_cache_capacity if self.plan_cache_enabled else 1
        # Normalization entries are tiny (text -> text + literal values),
        # but the key space is every distinct literal combination, so the
        # level-1 cache is sized far above the plan cache: a point-query
        # mix over a small key domain must mostly hit here or every
        # execution pays a full re-lex of the statement text.
        self._norm_cache = LRUCache(32 * cap)   # raw text -> normalization
        self._stmt_cache = LRUCache(2 * cap)    # template text -> parsed AST
        self._plan_cache = LRUCache(cap)        # (text, sig) -> plan entry
        self._script_cache = LRUCache(cap)      # script text -> parsed batch
        self.cache_stats = {
            "plan_hits": 0, "plan_misses": 0, "plan_invalidations": 0,
            "stmt_hits": 0, "stmt_misses": 0,
        }
        self.txns = TransactionManager(self.wal, self.locks, self)
        #: Per-table DML version bumps accumulated since the last
        #: :meth:`pop_version_updates` — the server piggybacks them onto
        #: the next ``ExecuteResponse`` so clients can invalidate shared
        #: result-cache entries transactionally.  Empty (and never
        #: written) while the result cache is off.
        self.pending_version_updates: dict[str, int] = {}
        #: Live engine sessions by connection token — lets system views
        #: (``sys_plan_cache``) report per-session temp-plan state.
        self.sessions: dict[int, EngineSession] = {}
        self.last_recovery: RecoveryReport | None = None
        # Fuzzy-checkpoint cadence state (only consulted when the
        # ``checkpoint_interval_seconds`` knob is on).
        self._next_checkpoint_at = 0.0
        self._last_fuzzy_begin_lsn = 0
        if recover:
            self.last_recovery = RecoveryManager(self.wal, self).recover()
            checkpoint = self.wal.last_complete_checkpoint()
            if isinstance(checkpoint, EndCheckpointRecord):
                self._last_fuzzy_begin_lsn = checkpoint.begin_lsn
            if self.meter.costs.result_cache_entries > 0:
                self._recompute_dml_versions()

    @classmethod
    def restart(cls, disk: SimulatedDisk, wal: WriteAheadLog,
                meter: Meter | None = None) -> "DatabaseEngine":
        """Build a post-crash engine from the surviving disk and log."""
        return cls(meter=meter, disk=disk, wal=wal, recover=True)

    # ------------------------------------------------------------------
    # Table runtimes
    # ------------------------------------------------------------------

    def table(self, name: str,
              session: EngineSession | None = None) -> Table:
        """Resolve a table name (``#temp`` names through the session)."""
        key = name.lower()
        if key.startswith("#"):
            if session is None:
                raise TableNotFoundError(
                    f"temp table {name!r} needs a session")
            temp = session.temp_table(key)
            if temp is None:
                raise TableNotFoundError(f"temp table {name!r} does not exist")
            return temp
        if key in SYSTEM_VIEWS:
            return self._system_table(key)
        info = self.catalog.get_table(key)
        return self._runtime(info)

    def _system_table(self, key: str) -> Table:
        """A read-only snapshot of catalog metadata as a queryable table.

        Rebuilt per reference (catalog contents change between queries);
        clients use these like SQL Server's system tables, e.g. the
        Phoenix maintenance tool enumerating orphaned result tables.
        """
        columns, rows = SYSTEM_VIEWS[key](self)
        self._volatile_seq += 1
        file_id = -self._volatile_seq
        self.buffer_pool.register_volatile(file_id)
        info = TableInfo(name=key, table_id=file_id, file_id=file_id,
                         columns=tuple(columns), volatile=True,
                         amplified=False)
        heap = HeapFile(file_id, self._rows_per_page(columns),
                        self.buffer_pool, cost_factor=1.0)
        runtime = Table(info, heap, self.meter)
        for row in rows:
            runtime.insert(row, None, None)
        return runtime

    def table_provider(self, session: EngineSession | None):
        """Closure handed to the planner for name resolution."""

        def provide(name: str) -> Table:
            return self.table(name, session)

        return provide

    def _planner(self, session: EngineSession | None,
                 params: dict | None) -> Planner:
        """A planner wired to this engine (views + catalog statistics)."""
        return Planner(self.table_provider(session), self.meter, params,
                       view_provider=self.view_provider(),
                       catalog=self.catalog)

    def _runtime(self, info: TableInfo) -> Table:
        runtime = self._tables.get(info.name)
        if runtime is not None and runtime.info.file_id == info.file_id:
            return runtime
        heap = HeapFile.attach(
            info.file_id, self._rows_per_page(info.columns),
            self.buffer_pool, self.disk, cost_factor=self._factor(info))
        runtime = Table(info, heap, self.meter)
        for index in self.catalog.indexes_on(info.name):
            # Attach-time build: mid-recovery heap state may transiently
            # duplicate a unique key; redo resolves it (see Table.add_index).
            runtime.add_index(index, enforce_unique=False)
        self._tables[info.name] = runtime
        return runtime

    def _rows_per_page(self, columns) -> int:
        return self.meter.costs.rows_per_page(row_width_bytes(list(columns)))

    def _factor(self, info: TableInfo) -> float:
        return self.meter.costs.work_amplification if info.amplified else 1.0

    # ------------------------------------------------------------------
    # Recovery / rollback target interface
    # ------------------------------------------------------------------

    def heap_for_file(self, file_id: int) -> HeapFile | None:
        runtime = self.table_for_file(file_id)
        return runtime.heap if runtime is not None else None

    def table_for_file(self, file_id: int) -> Table | None:
        """Table runtime for recovery: lets redo/undo maintain the
        secondary indexes alongside each heap change."""
        for info in self.catalog.tables.values():
            if info.file_id == file_id:
                return self._runtime(info)
        return None

    def redo_create_table(self, table: dict) -> None:
        if not self.catalog.has_table(table["name"]):
            columns = [Column(n, SqlType(t), length, nullable)
                       for n, t, length, nullable in table["columns"]]
            self.catalog.create_table(
                table["name"], columns, amplified=table["amplified"],
                primary_key=tuple(table["primary_key"]),
                table_id=table["table_id"], file_id=table["file_id"])
        self._tables.pop(table["name"], None)

    def redo_drop_table(self, table: dict) -> None:
        name = table["name"]
        if self.catalog.has_table(name):
            self.catalog.drop_table(name)
        self._tables.pop(name, None)
        self.buffer_pool.drop_file(table["file_id"])
        self.disk.drop_file(table["file_id"])

    def redo_create_procedure(self, name: str, param_names,
                              body_sql: str) -> None:
        if not self.catalog.has_procedure(name):
            self.catalog.create_procedure(name, list(param_names), body_sql)

    def redo_drop_procedure(self, name: str) -> None:
        if self.catalog.has_procedure(name):
            self.catalog.drop_procedure(name)

    def redo_create_view(self, name: str, body_sql: str) -> None:
        if self.catalog.get_view(name) is None:
            self.catalog.create_view(name, body_sql)

    def redo_drop_view(self, name: str) -> None:
        if self.catalog.get_view(name) is not None:
            self.catalog.drop_view(name)

    def redo_create_index(self, index: dict) -> None:
        if index["name"] not in self.catalog.indexes \
                and self.catalog.has_table(index["table_name"]):
            info = self.catalog.create_index(
                index["name"], index["table_name"],
                index["column_names"], index["unique"])
            runtime = self._tables.get(info.table_name)
            if runtime is not None:
                runtime.add_index(info)

    def redo_drop_index(self, index: dict) -> None:
        if index["name"] in self.catalog.indexes:
            self.catalog.drop_index(index["name"])
        runtime = self._tables.get(index["table_name"])
        if runtime is not None:
            runtime.remove_index(index["name"])

    def rebuild_indexes(self) -> None:
        for runtime in self._tables.values():
            runtime.rebuild_indexes()

    def undo_action(self, action: LogRecord) -> None:
        """Apply one online-rollback compensation with index maintenance."""
        if isinstance(action, (InsertRecord, DeleteRecord, UpdateRecord)):
            runtime = self._tables.get(action.table_name)
            if runtime is None or runtime.info.file_id != action.file_id:
                heap = self.heap_for_file(action.file_id)
                if heap is None:
                    return
                runtime = self._tables[self._table_name_for(action.file_id)]
            rid = RowId(action.file_id, action.page_no, action.slot)
            if isinstance(action, InsertRecord):
                runtime.apply_insert_with_indexes(rid, action.row, action.lsn)
            elif isinstance(action, DeleteRecord):
                runtime.apply_delete_with_indexes(rid, action.lsn)
            else:
                runtime.apply_update_with_indexes(rid, action.new_row,
                                                  action.lsn)
            return
        from repro.wal.recovery import apply_compensation

        apply_compensation(action, self)

    def _table_name_for(self, file_id: int) -> str:
        for info in self.catalog.tables.values():
            if info.file_id == file_id:
                return info.name
        raise TableNotFoundError(f"no table with file id {file_id}")

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self) -> int:
        """Sharp checkpoint: flush everything, snapshot the catalog,
        log a checkpoint record.  Returns its LSN."""
        # Checkpoint work reuses ordinary execution's charge notes
        # ("page io", "log force"); the attribution hint is what lets a
        # request's latency ledger bill it as checkpoint overhead.
        with self.meter.attribute_to("checkpoint"):
            self.buffer_pool.flush_all()
            self.disk.write_blob("catalog_snapshot",
                                 self.catalog.snapshot())
            record = CheckpointRecord(
                txn_id=0, active_txns=self.txns.active_txn_lsns())
            lsn = self.wal.append(record)
            self.wal.force()
        return lsn

    def maybe_fuzzy_checkpoint(self) -> None:
        """Cadence hook (called after each commit when the knob is on):
        take a fuzzy checkpoint once the virtual interval has elapsed."""
        interval = self.meter.costs.checkpoint_interval_seconds
        if interval <= 0.0:
            return
        now = self.meter.peek_now()
        if now < self._next_checkpoint_at:
            return
        self._next_checkpoint_at = now + interval
        self.fuzzy_checkpoint()

    def fuzzy_checkpoint(self, truncate: bool | None = None) -> int:
        """ARIES-style fuzzy checkpoint: Begin/End records around the
        dirty-page and active-transaction tables — **no pool flush, no
        blocking of in-flight transactions**.  Returns the Begin LSN.

        Ordering matters for truncation safety: the background flusher
        runs *before* the dirty-page table is captured, so the DPT logged
        in the End record is exactly the one the truncation decision is
        made from (a stale pre-flush DPT could let recovery's redo start
        point below the truncation boundary).

        ``truncate=None`` follows the ``checkpoint_truncate_log`` knob.
        """
        if truncate is None:
            truncate = self.meter.costs.checkpoint_truncate_log
        with self.meter.attribute_to("checkpoint"):
            return self._fuzzy_checkpoint_inner(truncate)

    def _fuzzy_checkpoint_inner(self, truncate: bool) -> int:
        begin_lsn = self.wal.append(BeginCheckpointRecord(txn_id=0))
        # The catalog snapshot reflects every DDL record below begin_lsn
        # (appends are single-threaded), so redo skips pre-Begin DDL.
        self.disk.write_blob("catalog_snapshot", self.catalog.snapshot())
        # Background flusher: write out pages that stayed dirty for a
        # whole interval, advancing the DPT's minimum recLSN.
        flushed = self.buffer_pool.flush_dirtied_before(
            self._last_fuzzy_begin_lsn)
        dirty_pages = self.buffer_pool.dirty_page_table()
        end = EndCheckpointRecord(
            txn_id=0, begin_lsn=begin_lsn, dirty_pages=dirty_pages,
            active_txns=self.txns.active_txn_lsns(),
            active_first_lsns=self.txns.active_txn_first_lsns())
        self.wal.append(end)
        # Write-behind force (no commit latency): the checkpoint must be
        # durable before its truncation takes effect.
        self.wal.force(sync=False)
        self.meter.count("checkpoints_taken")
        if flushed:
            self.meter.count("pages_flushed_background", flushed)
        self.meter.obs.metrics.gauge_set(
            "min_reclsn", float(min(dirty_pages.values(),
                                    default=begin_lsn)))
        if truncate:
            keep_from = begin_lsn
            if dirty_pages:
                keep_from = min(keep_from, min(dirty_pages.values()))
            if end.active_first_lsns:
                keep_from = min(keep_from,
                                min(end.active_first_lsns.values()))
            if keep_from > 1:
                truncated = self.wal.truncate(
                    keep_from - 1, archive=self._archive_log_records)
                if truncated:
                    self.meter.count("log_records_truncated", truncated)
        self._last_fuzzy_begin_lsn = begin_lsn
        return begin_lsn

    def _archive_log_records(self, records: list) -> None:
        """Truncation sink: move the dropped log prefix to cold storage."""
        self.disk.append_blob("wal_archive", records)

    # ------------------------------------------------------------------
    # Per-table DML versions (shared result cache invalidation keys)
    # ------------------------------------------------------------------

    @staticmethod
    def _version_tracked(name: str) -> bool:
        """Whether the shared result cache stamps/invalidates by ``name``.

        Temp tables are session-private, ``sys_*`` snapshots are rebuilt
        per query, and Phoenix's own overhead tables churn constantly —
        none of them may pollute the shared version vector.
        """
        return not (name.startswith("#") or name.startswith("phoenix")
                    or name in SYSTEM_VIEWS)

    def note_committed_writes(self, table_names) -> None:
        """Commit hook (see ``TransactionManager.commit``): bump the DML
        version of every table the committed transaction wrote and queue
        the new values for the next response piggyback."""
        for name in sorted(table_names):
            if self._version_tracked(name):
                self.pending_version_updates[name] = \
                    self.catalog.bump_dml_version(name)

    def pop_version_updates(self) -> dict[str, int]:
        """Drain the version bumps accumulated since the last call."""
        if not self.pending_version_updates:
            return {}
        updates = self.pending_version_updates
        self.pending_version_updates = {}
        return updates

    def _recompute_dml_versions(self) -> None:
        """Rebuild ``catalog.dml_versions`` from the log after a crash.

        The counters are deliberately never snapshotted: replaying one
        +1 per table per committed transaction over the archived prefix
        plus the surviving log yields versions *exactly* consistent with
        the recovered data (uncommitted work never counted — redo/undo
        leaves no trace of it in table contents either).  With
        asynchronous commit a crash can lose acked commits, so the same
        count can name different data across a crash; the client side
        handles that by discarding its cache wholesale on reconnect
        (see ``SharedResultCache.revalidate``).
        """
        from repro.wal.records import (
            AbortRecord,
            CommitRecord,
            CreateIndexRecord,
            CreateProcedureRecord,
            CreateTableRecord,
            CreateViewRecord,
            DropIndexRecord,
            DropProcedureRecord,
            DropTableRecord,
            DropViewRecord,
        )

        pending: dict[int, set[str]] = {}
        archived = self.disk.read_blob("wal_archive", [])
        for rec in list(archived) + list(self.wal.all_records()):
            name = None
            if isinstance(rec, (InsertRecord, DeleteRecord, UpdateRecord)):
                name = rec.table_name
            elif isinstance(rec, (CreateTableRecord, DropTableRecord)):
                name = rec.table["name"]
            elif isinstance(rec, (CreateIndexRecord, DropIndexRecord)):
                name = rec.index["table_name"]
            elif isinstance(rec, (CreateViewRecord, DropViewRecord)):
                name = rec.name
            elif isinstance(rec, (CreateProcedureRecord,
                                  DropProcedureRecord)):
                pass  # procedures are not read dependencies; untracked
            elif isinstance(rec, CommitRecord):
                for table in sorted(pending.pop(rec.txn_id, ())):
                    self.catalog.bump_dml_version(table)
                continue
            elif isinstance(rec, AbortRecord):
                pending.pop(rec.txn_id, None)
                continue
            if name is not None and self._version_tracked(name.lower()):
                pending.setdefault(rec.txn_id, set()).add(name.lower())

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------

    def execute(self, sql, session: EngineSession,
                params: dict | None = None) -> StatementResult:
        """Execute one statement (SQL text or pre-parsed AST)."""
        if isinstance(sql, str):
            prepared, norm = self._prepare(sql)
        else:
            prepared, norm = CachedStatement(statement=sql), None
        return self._execute_one(prepared, norm, session, params or {})

    def execute_script(self, sql: str, session: EngineSession,
                       params: dict | None = None) -> list[StatementResult]:
        """Execute a ``;``-separated batch; returns one result each.

        Each statement is charged the same parse/plan CPU as a statement
        arriving through :meth:`execute` — batches are not free.
        """
        return [self._execute_one(prepared, None, session, params or {})
                for prepared in self._prepare_script(sql)]

    def _execute_one(self, prepared: CachedStatement, norm,
                     session: EngineSession,
                     params: dict) -> StatementResult:
        """The single entry point every statement funnels through: levy
        the per-statement parse/plan charge, then dispatch.  ``norm`` is
        the current text's normalization (its literal values), never the
        shared template entry's."""
        obs = self.meter.obs
        if obs.enabled:
            with obs.tracer.span(
                    "engine.execute", layer="engine",
                    statement=type(prepared.statement).__name__):
                return self._execute_one_inner(prepared, norm, session,
                                               params)
        return self._execute_one_inner(prepared, norm, session, params)

    def _execute_one_inner(self, prepared: CachedStatement, norm,
                           session: EngineSession,
                           params: dict) -> StatementResult:
        self.meter.charge(SERVER_CPU,
                          self.meter.costs.cpu_per_statement_seconds,
                          "statement parse/plan")
        statement = prepared.statement
        txn = session.current_txn if session is not None else None
        if txn is not None and not txn.is_active:
            # The session's transaction was aborted out from under it —
            # chosen as a deadlock victim while another session held the
            # engine.  This check must sit on the single statement
            # funnel (not just the uncached-dispatch path): a cached DML
            # plan would otherwise see ``in_transaction`` False and run
            # in a fresh autocommit scope, silently committing the tail
            # of a transaction whose head was just undone.  Every
            # statement fails until an explicit ROLLBACK acknowledges
            # the abort and resets the session.
            if not isinstance(statement, ast.RollbackStatement):
                raise DeadlockError(
                    f"txn {txn.txn_id} was aborted as a deadlock victim; "
                    f"roll back and retry the transaction")
            session.current_txn = None
            return StatementResult.ok("rolled back")
        if norm is not None:
            merged = norm.params
            if params:
                merged.update(params)
            exec_params = merged
        else:
            exec_params = params
        if (self.plan_cache_enabled and prepared.text is not None
                and prepared.cacheable_plan):
            if isinstance(statement,
                          (ast.SelectStatement, ast.UnionSelect)):
                result = self._execute_select_cached(prepared, norm,
                                                     session, exec_params,
                                                     params)
                self._stamp_read_versions(result, statement)
                return result
            if isinstance(statement, (ast.InsertStatement,
                                      ast.UpdateStatement,
                                      ast.DeleteStatement)):
                return self._execute_dml_cached(prepared, norm, session,
                                                exec_params, params)
        result = self._execute_parsed(statement, session, exec_params)
        if isinstance(statement, (ast.SelectStatement, ast.UnionSelect)):
            self._stamp_read_versions(result, statement)
        return result

    def _stamp_read_versions(self, result: StatementResult,
                             statement: ast.Statement) -> None:
        """Stamp a SELECT result with the DML version of every table its
        plan reads (the shared result cache's validity certificate).
        ``None`` — the knob-off state — also marks results whose
        dependencies the shared cache must not serve (temp tables,
        ``sys_*`` views, Phoenix overhead tables)."""
        if self.meter.costs.result_cache_entries <= 0:
            return
        names = self._plan_dependencies(statement)
        versions: dict[str, int] = {}
        for name in names:
            if not self._version_tracked(name):
                return
            versions[name] = self.catalog.dml_version_of(name)
        result.read_versions = versions

    # -- statement preparation (levels 1 and 2) -----------------------------

    def _prepare(self, sql: str):
        """Resolve ``sql`` through the normalization and template caches.

        Returns ``(shared template entry, this text's normalization)``.
        """
        if not self.plan_cache_enabled:
            return CachedStatement(statement=parse_statement(sql)), None
        norm = self._norm_cache.get(sql)
        if norm is None:
            norm = normalize_statement(sql)
            self._norm_cache.put(sql, norm if norm is not None else False)
        if norm is False:
            norm = None
        template = norm.text if norm is not None else sql
        cached = self._stmt_cache.get(template)
        if cached is not None:
            self.cache_stats["stmt_hits"] += 1
            return cached, norm
        self.cache_stats["stmt_misses"] += 1
        if norm is not None:
            try:
                statement = parse_statement(template)
            except SqlSyntaxError:
                # The template hid a literal the grammar needed; remember
                # that this text must be taken verbatim.
                self._norm_cache.put(sql, False)
                norm, template = None, sql
                statement = parse_statement(sql)
        else:
            statement = parse_statement(sql)
        cached = CachedStatement(statement=statement, text=template)
        self._stmt_cache.put(template, cached)
        return cached, norm

    def _prepare_script(self, sql: str) -> tuple:
        """Parse a ``;``-separated batch once; reuse on repeat texts."""
        if not self.plan_cache_enabled:
            return tuple(CachedStatement(statement=s)
                         for s in parse_script(sql))
        cached = self._script_cache.get(sql)
        if cached is None:
            cached = tuple(CachedStatement(statement=s)
                           for s in parse_script(sql))
            self._script_cache.put(sql, cached)
        return cached

    # -- plan cache (level 3) -----------------------------------------------

    def _execute_select_cached(self, prepared: CachedStatement, norm,
                               session: EngineSession, params: dict,
                               user_params: dict) -> StatementResult:
        statement = prepared.statement
        sig = norm.signature if norm is not None else ()
        if user_params:
            sig = sig + tuple(sorted(
                (name, _type_signature(value))
                for name, value in user_params.items()))
        key = (prepared.text, sig)
        entry = self._lookup_plan(key, session)
        if entry is not None:
            self.cache_stats["plan_hits"] += 1
            self.meter.count("plan_cache_hits")
            # Plan reuse is compiled-expression reuse: every closure in
            # the plan was compiled once, on the miss that created it.
            stats = self.meter.executor_stats
            stats["expr_cache_hits"] = stats.get("expr_cache_hits", 0) + 1
            # Rebind in place: the plan's compiled closures captured this
            # exact dict.  Subquery memos are cleared so every execution
            # starts from the state a fresh compile would have.
            entry.params.clear()
            entry.params.update(params)
            for subquery in entry.subqueries:
                subquery.memo.clear()
            return self._run_select_entry(entry, statement, session)
        self.cache_stats["plan_misses"] += 1
        self.meter.count("plan_cache_misses")
        stats = self.meter.executor_stats
        stats["expr_cache_misses"] = stats.get("expr_cache_misses", 0) + 1
        plan_params = dict(params)
        planner = self._planner(session, plan_params)
        plan = planner.plan_select(statement)
        entry = PlanCacheEntry(plan=plan, params=plan_params,
                               subqueries=list(planner.subquery_log),
                               table_versions={}, temp_tables={},
                               streamable=is_streamable_plan(plan.root))
        self._remember_plan(key, entry, statement, session)
        return self._run_select_entry(entry, statement, session)

    def _execute_dml_cached(self, prepared: CachedStatement, norm,
                            session: EngineSession, params: dict,
                            user_params: dict) -> StatementResult:
        """INSERT/UPDATE/DELETE through the plan cache.

        Same shape as :meth:`_execute_select_cached`: the cache key is
        the normalized template plus the parameter type signature, hits
        rebind the entry's captured params dict in place, and entries
        are revalidated against catalog versions / temp-table identity.
        DML entries are never left ``active`` — a DML statement consumes
        its row source before returning — so rebinding is always safe.
        """
        statement = prepared.statement
        sig = norm.signature if norm is not None else ()
        if user_params:
            sig = sig + tuple(sorted(
                (name, _type_signature(value))
                for name, value in user_params.items()))
        key = (prepared.text, sig)
        entry = self._lookup_plan(key, session)
        stats = self.meter.executor_stats
        if entry is not None:
            self.cache_stats["plan_hits"] += 1
            self.meter.count("plan_cache_hits")
            stats["expr_cache_hits"] = stats.get("expr_cache_hits", 0) + 1
            entry.params.clear()
            entry.params.update(params)
            for subquery in entry.subqueries:
                subquery.memo.clear()
            return self._run_dml(entry.plan, session)
        self.cache_stats["plan_misses"] += 1
        self.meter.count("plan_cache_misses")
        stats["expr_cache_misses"] = stats.get("expr_cache_misses", 0) + 1
        plan_params = dict(params)
        planner = self._planner(session, plan_params)
        compiled = self._compile_dml(statement, session, planner)
        entry = PlanCacheEntry(plan=compiled, params=plan_params,
                               subqueries=list(planner.subquery_log),
                               table_versions={}, temp_tables={},
                               streamable=False)
        self._remember_plan(key, entry, statement, session)
        return self._run_dml(compiled, session)

    def _lookup_plan(self, key, session: EngineSession):
        """Find a still-valid cached plan for ``key``, or None."""
        store = self._plan_cache
        entry = store.get(key)
        if entry is None and session is not None:
            store = session.plan_cache
            entry = store.get(key)
        if entry is None:
            return None
        if entry.active > 0:
            # A suspended row stream still reads entry.params; plan fresh
            # rather than rebinding under it.
            return None
        if not entry.is_valid(self.catalog):
            store.pop(key)
            self.cache_stats["plan_invalidations"] += 1
            return None
        for name, runtime in entry.temp_tables.items():
            if session is None or session.temp_table(name) is not runtime:
                store.pop(key)
                self.cache_stats["plan_invalidations"] += 1
                return None
        return entry

    def _remember_plan(self, key, entry: PlanCacheEntry,
                       statement: ast.Statement,
                       session: EngineSession) -> None:
        """Record revalidation facts and store the entry (when legal)."""
        names = self._plan_dependencies(statement)
        if any(name in SYSTEM_VIEWS for name in names):
            return  # sys_* snapshots are rebuilt (and charged) per query
        for name in names:
            if name.startswith("#"):
                runtime = (session.temp_table(name)
                           if session is not None else None)
                if runtime is None:
                    return
                entry.temp_tables[name] = runtime
            else:
                entry.table_versions[name] = self.catalog.version_of(name)
                entry.stats_versions[name] = \
                    self.catalog.stats_version_of(name)
        if entry.temp_tables:
            if session is not None:
                session.plan_cache.put(key, entry)
        else:
            self._plan_cache.put(key, entry)

    def _plan_dependencies(self, statement: ast.Statement) -> set[str]:
        """Every table/view name a plan for ``statement`` depends on,
        with views expanded recursively."""
        names: set[str] = set()
        pending = list(self._referenced_tables(statement))
        while pending:
            name = pending.pop()
            if name in names:
                continue
            names.add(name)
            view = self.catalog.get_view(name)
            if view is not None:
                try:
                    body = parse_statement(view.body_sql)
                except SqlSyntaxError:
                    continue
                pending.extend(self._referenced_tables(body))
        return names

    def _run_select_entry(self, entry: PlanCacheEntry,
                          statement: ast.Statement,
                          session: EngineSession) -> StatementResult:
        probe = None
        if session is not None and session.in_transaction:
            lock_tables = entry.lock_tables
            if lock_tables is None:
                lock_tables = [name
                               for name in self._referenced_tables(statement)
                               if not name.startswith("#")]
                entry.lock_tables = lock_tables
            txn = session.current_txn
            self._acquire_read_locks(txn.txn_id, lock_tables)
            probe = self._reader_probe(txn)
        plan = entry.plan
        entry.active += 1

        if probe is None:
            def guarded_rows():
                try:
                    yield from iterate_plan(plan.root, self.meter)
                finally:
                    entry.active -= 1
        else:
            def guarded_rows():
                try:
                    yield from self._probed_rows(plan.root, probe)
                finally:
                    entry.active -= 1

        result = StatementResult.of_rows(plan.output_columns,
                                         guarded_rows())
        result.streamable = entry.streamable
        return result

    def _execute_parsed(self, statement: ast.Statement,
                        session: EngineSession,
                        params: dict) -> StatementResult:
        if isinstance(statement, (ast.SelectStatement, ast.UnionSelect)):
            return self._execute_select(statement, session, params)
        if isinstance(statement, ast.ExplainStatement):
            return self._execute_explain(statement, session, params)
        if isinstance(statement, ast.AnalyzeStatement):
            return self._execute_analyze(statement, session)
        if isinstance(statement, ast.InsertStatement):
            return self._execute_insert(statement, session, params)
        if isinstance(statement, ast.UpdateStatement):
            return self._execute_update(statement, session, params)
        if isinstance(statement, ast.DeleteStatement):
            return self._execute_delete(statement, session, params)
        if isinstance(statement, ast.CreateTableStatement):
            return self._execute_create_table(statement, session)
        if isinstance(statement, ast.DropTableStatement):
            return self._execute_drop_table(statement, session)
        if isinstance(statement, ast.CreateIndexStatement):
            return self._execute_create_index(statement, session)
        if isinstance(statement, ast.DropIndexStatement):
            return self._execute_drop_index(statement, session)
        if isinstance(statement, ast.CreateProcedureStatement):
            return self._execute_create_procedure(statement, session)
        if isinstance(statement, ast.DropProcedureStatement):
            return self._execute_drop_procedure(statement, session)
        if isinstance(statement, ast.CreateViewStatement):
            return self._execute_create_view(statement, session)
        if isinstance(statement, ast.DropViewStatement):
            return self._execute_drop_view(statement, session)
        if isinstance(statement, ast.ExecStatement):
            return self._execute_proc(statement, session, params)
        if isinstance(statement, ast.BeginTransactionStatement):
            return self._execute_begin(session)
        if isinstance(statement, ast.CommitStatement):
            return self._execute_commit(session)
        if isinstance(statement, ast.RollbackStatement):
            return self._execute_rollback(session)
        raise EngineError(
            f"unsupported statement {type(statement).__name__}")

    # -- transactions ----------------------------------------------------------

    def _execute_begin(self, session: EngineSession) -> StatementResult:
        if session.in_transaction:
            raise TransactionError("already in a transaction")
        session.current_txn = self.txns.begin()
        return StatementResult.ok("transaction started")

    def _execute_commit(self, session: EngineSession) -> StatementResult:
        if not session.in_transaction:
            raise TransactionError("no transaction to commit")
        self.txns.commit(session.current_txn)
        session.current_txn = None
        return StatementResult.ok("committed")

    def _execute_rollback(self, session: EngineSession) -> StatementResult:
        if not session.in_transaction:
            raise TransactionError("no transaction to roll back")
        self.txns.abort(session.current_txn)
        session.current_txn = None
        return StatementResult.ok("rolled back")

    # -- row-granularity locking (lock_granularity="row") --------------------

    def _row_locking(self) -> bool:
        return self.meter.costs.lock_granularity == "row"

    def _abort_deadlock_victim(self, txn_id: int) -> None:
        """Deadlock-victim callback wired into the lock manager.

        Runs *inside* another session's lock request: the victim's undo
        executes (and is charged) before the requester unwinds with
        ``LockWaitError``.  The victim's session notices on its next
        statement (see the check in :meth:`_execute_parsed`).
        """
        txn = self.txns.active_transactions.get(txn_id)
        if txn is None or not txn.is_active:
            self.locks.release_all(txn_id)
            return
        self.txns.abort(txn)

    def _acquire_read_locks(self, txn_id: int, names) -> None:
        """Statement-start read locks for an in-transaction SELECT.

        Table S under the seed policy.  Under row granularity, tables
        with a primary key take IS instead — the executor's lock probe
        then takes row S locks per produced row — while tables without a
        primary key (and non-table names: views, sys_* snapshots, which
        keep the seed's phantom S entry) stay at table S.
        """
        if not self._row_locking():
            for name in names:
                self.locks.acquire(txn_id, name, LockMode.SHARED)
            return
        for name in names:
            info = self.catalog.tables.get(name.lower())
            mode = (LockMode.INTENT_SHARED
                    if info is not None and info.primary_key
                    else LockMode.SHARED)
            self.locks.acquire(txn_id, name, mode)

    def _reader_probe(self, txn: Transaction):
        """Per-row S-lock probe (see ``Meter.lock_probe``), or None under
        the default table granularity."""
        if not self._row_locking():
            return None
        locks = self.locks

        def probe(table: Table, rid: RowId, row: tuple | None) -> None:
            info = table.info
            if info.volatile or not info.primary_key:
                return
            if not txn.is_active:
                raise DeadlockError(
                    f"txn {txn.txn_id} was aborted as a deadlock victim")
            if row is None:
                # Covering (index-only) scan: the probe must identify the
                # row to lock it, so it reads the heap itself.
                row = table.heap.read(rid)
                if row is None:
                    return
            locks.acquire(txn.txn_id, info.name, LockMode.INTENT_SHARED)
            locks.acquire_row(txn.txn_id, info.name,
                              table.row_lock_key(row), LockMode.SHARED)

        return probe

    def _probed_rows(self, root, probe):
        """Iterate a plan with ``probe`` installed around each pull.

        Install/uninstall brackets every ``next`` so lazily-consumed
        result sets of *other* interleaved sessions can never pick up
        this transaction's probe.
        """
        meter = self.meter
        inner = iterate_plan(root, meter)
        while True:
            meter.lock_probe = probe
            try:
                row = next(inner)
            except StopIteration:
                return
            finally:
                meter.lock_probe = None
            yield row

    class _TxnScope:
        """Runs a statement inside the session txn or an autocommit txn."""

        def __init__(self, engine: "DatabaseEngine", session: EngineSession):
            self._engine = engine
            self._session = session
            self._own = not session.in_transaction
            self.txn: Transaction | None = None

        def __enter__(self) -> Transaction:
            if self._own:
                self.txn = self._engine.txns.begin()
            else:
                self.txn = self._session.current_txn
            return self.txn

        def __exit__(self, exc_type, exc, tb) -> None:
            if self._own:
                if exc_type is None:
                    self._engine.txns.commit(self.txn)
                elif self.txn.is_active:
                    self._engine.txns.abort(self.txn)

    # -- SELECT -------------------------------------------------------------

    def _execute_select(self, statement: ast.SelectStatement,
                        session: EngineSession,
                        params: dict) -> StatementResult:
        planner = self._planner(session, params)
        plan = planner.plan_select(statement)
        probe = None
        if session.in_transaction:
            self._acquire_read_locks(
                session.current_txn.txn_id,
                [name for name in self._referenced_tables(statement)
                 if not name.startswith("#")])
            probe = self._reader_probe(session.current_txn)
        if probe is None:
            rows = iterate_plan(plan.root, self.meter)
        else:
            rows = self._probed_rows(plan.root, probe)
        result = StatementResult.of_rows(plan.output_columns, rows)
        result.streamable = is_streamable_plan(plan.root)
        return result

    def _execute_explain(self, statement: ast.ExplainStatement,
                         session: EngineSession,
                         params: dict) -> StatementResult:
        from repro.sql.explain import explain_plan

        planner = self._planner(session, params)
        plan = planner.plan_select(statement.select)
        lines = explain_plan(plan.root)
        columns = [Column("plan", SqlType.VARCHAR, 200)]
        return StatementResult.of_rows(columns,
                                       iter((line,) for line in lines))

    def _execute_analyze(self, statement: ast.AnalyzeStatement,
                         session: EngineSession) -> StatementResult:
        """ANALYZE [table]: collect optimizer statistics.

        The scan charges per-tuple CPU (amplified like any base-table
        work); results land in the catalog (snapshotted at checkpoints)
        *and* in a dedicated blob written immediately, so statistics
        survive a crash that precedes the next checkpoint.  The stats
        version bump invalidates cached plans compiled under stale
        statistics (see :meth:`_remember_plan`).
        """
        from repro.sql.stats import collect_table_stats

        costs = self.meter.costs
        if statement.table is not None:
            names = [self.catalog.get_table(statement.table).name]
        else:
            names = sorted(name for name, info in self.catalog.tables.items()
                           if not info.volatile)
        for name in names:
            runtime = self.table(name, session)
            stats = collect_table_stats(
                runtime, buckets=costs.analyze_histogram_buckets)
            per_tuple = costs.cpu_per_tuple_analyze * runtime.cost_factor
            if per_tuple > 0 and stats["row_count"]:
                self.meter.charge_rows(SERVER_CPU, per_tuple,
                                       stats["row_count"], "analyze scan")
            self.catalog.set_table_stats(name, stats)
        if names:
            self.disk.write_blob("table_stats_snapshot", {
                "table_stats": dict(self.catalog.table_stats),
                "stats_versions": dict(self.catalog.stats_versions),
            })
        return StatementResult.ok(f"analyzed {len(names)} table(s)")

    # -- INSERT -------------------------------------------------------------

    def _execute_insert(self, statement: ast.InsertStatement,
                        session: EngineSession,
                        params: dict) -> StatementResult:
        planner = self._planner(session, params)
        return self._run_dml(self._compile_dml(statement, session, planner),
                             session)

    def _compile_dml(self, statement: ast.Statement,
                     session: EngineSession,
                     planner: Planner) -> _CompiledDml:
        """Plan one DML statement into reusable compiled artifacts."""
        if isinstance(statement, ast.InsertStatement):
            table = self.table(statement.table, session)
            compiled = _CompiledDml(kind="insert", table=table)
            if statement.select is not None:
                compiled.select_plan = planner.plan_select(statement.select)
            else:
                compiled.row_fns = [
                    [planner.compile_scalar(e) for e in row_exprs]
                    for row_exprs in statement.rows]
            compiled.target_columns = statement.columns or [
                c.name for c in table.info.columns]
            compiled.column_positions = [table.info.column_index(c)
                                         for c in compiled.target_columns]
            return compiled
        iterate, table = planner.plan_dml_source(statement.table,
                                                 statement.where)
        if isinstance(statement, ast.DeleteStatement):
            return _CompiledDml(kind="delete", table=table, iterate=iterate)
        bindings = [(table.info.name, c.name) for c in table.info.columns]
        assignments = []
        for column_name, expr in statement.assignments:
            position = table.info.column_index(column_name)
            assignments.append((position,
                                planner.compile_row_expr(expr, bindings)))
        return _CompiledDml(kind="update", table=table, iterate=iterate,
                            assignments=assignments)

    def _run_dml(self, compiled: _CompiledDml,
                 session: EngineSession) -> StatementResult:
        if compiled.kind == "insert":
            return self._run_insert(compiled, session)
        if compiled.kind == "update":
            return self._run_update(compiled, session)
        return self._run_delete(compiled, session)

    def _run_insert(self, compiled: _CompiledDml,
                    session: EngineSession) -> StatementResult:
        table = compiled.table
        if compiled.select_plan is not None:
            source_rows = list(iterate_plan(compiled.select_plan.root,
                                            self.meter))
        else:
            ctx = EvalContext(row=())
            source_rows = [tuple(fn(ctx) for fn in fns)
                           for fns in compiled.row_fns]
        target_columns = compiled.target_columns
        column_positions = compiled.column_positions
        count = 0
        with DatabaseEngine._TxnScope(self, session) as txn:
            mode = self._lock_for_write(session, txn, table)
            if mode is LockMode.INTENT_EXCLUSIVE:
                # Row granularity: build every row and take all row X
                # locks *before* the first insert, so a LockWaitError can
                # only unwind a statement that has not mutated anything —
                # the retry re-runs it from scratch safely.
                rows = []
                for source in source_rows:
                    if len(source) != len(target_columns):
                        raise EngineError(
                            f"INSERT has {len(source)} values for "
                            f"{len(target_columns)} columns")
                    rows.append(self._build_row(table, column_positions,
                                                source))
                name = table.info.name
                for row in rows:
                    self.locks.acquire_row(txn.txn_id, name,
                                           table.row_lock_key(row),
                                           LockMode.EXCLUSIVE)
                for row in rows:
                    table.insert(row, txn, self.txns)
                    count += 1
            else:
                for source in source_rows:
                    if len(source) != len(target_columns):
                        raise EngineError(
                            f"INSERT has {len(source)} values for "
                            f"{len(target_columns)} columns")
                    row = self._build_row(table, column_positions, source)
                    table.insert(row, txn, self.txns)
                    count += 1
        return StatementResult.of_rowcount(count, f"{count} rows inserted")

    def _build_row(self, table: Table, positions: list[int],
                   source: tuple) -> tuple:
        values: list = [None] * len(table.info.columns)
        for position, value in zip(positions, source):
            column = table.info.columns[position]
            values[position] = coerce_column(value, column)
        for i, column in enumerate(table.info.columns):
            if values[i] is None and not column.nullable:
                raise EngineError(
                    f"column {column.name!r} is NOT NULL")
        return tuple(values)

    # -- UPDATE / DELETE -----------------------------------------------------

    def _execute_update(self, statement: ast.UpdateStatement,
                        session: EngineSession,
                        params: dict) -> StatementResult:
        planner = self._planner(session, params)
        return self._run_dml(self._compile_dml(statement, session, planner),
                             session)

    def _run_update(self, compiled: _CompiledDml,
                    session: EngineSession) -> StatementResult:
        table = compiled.table
        columns = table.info.columns
        count = 0
        with DatabaseEngine._TxnScope(self, session) as txn:
            mode = self._lock_for_write(session, txn, table)
            matches = list(compiled.iterate())
            if mode is LockMode.INTENT_EXCLUSIVE:
                # Two-phase (row granularity): compute every new row and
                # take all row X locks before the first update, so a
                # LockWaitError unwinds only statements that have not
                # mutated anything (the matches may also be stale — a
                # retry re-reads them).
                updates = []
                for rid, row in matches:
                    new_values = list(row)
                    ctx = EvalContext(row=row)
                    for position, fn in compiled.assignments:
                        column = columns[position]
                        value = coerce_column(fn(ctx), column)
                        if value is None and not column.nullable:
                            raise EngineError(
                                f"column {column.name!r} is NOT NULL")
                        new_values[position] = value
                    updates.append((rid, row, tuple(new_values)))
                name = table.info.name
                for _rid, old_row, new_row in updates:
                    old_key = table.row_lock_key(old_row)
                    self.locks.acquire_row(txn.txn_id, name, old_key,
                                           LockMode.EXCLUSIVE)
                    new_key = table.row_lock_key(new_row)
                    if new_key != old_key:
                        self.locks.acquire_row(txn.txn_id, name, new_key,
                                               LockMode.EXCLUSIVE)
                for rid, _old_row, new_row in updates:
                    table.update(rid, new_row, txn, self.txns)
                    count += 1
            else:
                for rid, row in matches:
                    new_values = list(row)
                    ctx = EvalContext(row=row)
                    for position, fn in compiled.assignments:
                        column = columns[position]
                        value = coerce_column(fn(ctx), column)
                        if value is None and not column.nullable:
                            raise EngineError(
                                f"column {column.name!r} is NOT NULL")
                        new_values[position] = value
                    table.update(rid, tuple(new_values), txn, self.txns)
                    count += 1
        return StatementResult.of_rowcount(count, f"{count} rows updated")

    def _execute_delete(self, statement: ast.DeleteStatement,
                        session: EngineSession,
                        params: dict) -> StatementResult:
        planner = self._planner(session, params)
        return self._run_dml(self._compile_dml(statement, session, planner),
                             session)

    def _run_delete(self, compiled: _CompiledDml,
                    session: EngineSession) -> StatementResult:
        table = compiled.table
        count = 0
        with DatabaseEngine._TxnScope(self, session) as txn:
            mode = self._lock_for_write(session, txn, table)
            matches = list(compiled.iterate())
            if mode is LockMode.INTENT_EXCLUSIVE:
                # All row X locks before the first delete (see _run_update).
                name = table.info.name
                for _rid, row in matches:
                    self.locks.acquire_row(txn.txn_id, name,
                                           table.row_lock_key(row),
                                           LockMode.EXCLUSIVE)
            for rid, _row in matches:
                table.delete(rid, txn, self.txns)
                count += 1
        return StatementResult.of_rowcount(count, f"{count} rows deleted")

    def _lock_for_write(self, session: EngineSession, txn: Transaction,
                        table: Table) -> LockMode | None:
        """Take the table-granularity write lock; returns the mode taken.

        Seed policy: table X.  Row granularity: table IX (the caller
        then takes row X locks) — except for tables without a primary
        key (no row identity to lock) and tables carrying a *secondary*
        unique index, where concurrent writers could race uniqueness
        checks against uncommitted rows; both keep table X.
        """
        info = table.info
        if info.volatile:
            return None
        mode = LockMode.EXCLUSIVE
        if self._row_locking() and info.primary_key:
            mode = LockMode.INTENT_EXCLUSIVE
            for index in table.indexes():
                if index.unique and not index.name.startswith("__pk_"):
                    mode = LockMode.EXCLUSIVE
                    break
        self.locks.acquire(txn.txn_id, info.name, mode)
        return mode

    # -- DDL ---------------------------------------------------------------

    def _execute_create_table(self, statement: ast.CreateTableStatement,
                              session: EngineSession) -> StatementResult:
        columns = [self._column_from_def(d) for d in statement.columns]
        name = statement.name.lower()
        if name.startswith("#"):
            return self._create_temp_table(name, columns,
                                           statement.primary_key, session)
        amplified = not name.startswith("phoenix_")
        with DatabaseEngine._TxnScope(self, session) as txn:
            info = self.catalog.create_table(
                name, columns, amplified=amplified,
                primary_key=tuple(statement.primary_key))
            self.txns.log_create_table(txn, self._table_snapshot(info))
            self._runtime(info)
        self.meter.charge(SERVER_CPU,
                          self.meter.costs.create_table_cpu_seconds,
                          "create table cpu")
        self.meter.charge(SERVER_DISK,
                          self.meter.costs.create_table_disk_seconds,
                          "create table disk")
        return StatementResult.ok(f"table {name} created")

    def _create_temp_table(self, name: str, columns: list[Column],
                           primary_key: list[str],
                           session: EngineSession) -> StatementResult:
        if session.temp_table(name) is not None:
            raise EngineError(f"temp table {name!r} already exists")
        self._volatile_seq += 1
        file_id = -self._volatile_seq  # negative: never collides with durable
        info = TableInfo(name=name, table_id=file_id, file_id=file_id,
                         columns=tuple(columns), volatile=True,
                         amplified=False,
                         primary_key=tuple(c.lower() for c in primary_key))
        self.buffer_pool.register_volatile(file_id)
        heap = HeapFile(file_id, self._rows_per_page(columns),
                        self.buffer_pool, cost_factor=1.0)
        session.temp_tables[name] = Table(info, heap, self.meter)
        return StatementResult.ok(f"temp table {name} created")

    def _execute_drop_table(self, statement: ast.DropTableStatement,
                            session: EngineSession) -> StatementResult:
        name = statement.name.lower()
        if name.startswith("#"):
            if session.temp_tables.pop(name, None) is None:
                raise TableNotFoundError(f"temp table {name!r} does not exist")
            return StatementResult.ok(f"temp table {name} dropped")
        info = self.catalog.get_table(name)
        with DatabaseEngine._TxnScope(self, session) as txn:
            self.locks.acquire(txn.txn_id, name, LockMode.EXCLUSIVE)
            snapshot = self._table_snapshot(info)
            self.catalog.drop_table(name)
            self.txns.log_drop_table(txn, snapshot)
            self._tables.pop(name, None)
            file_id = info.file_id
            txn.on_commit.append(
                lambda: (self.buffer_pool.drop_file(file_id),
                         self.disk.drop_file(file_id)))
        return StatementResult.ok(f"table {name} dropped")

    def _execute_create_index(self, statement: ast.CreateIndexStatement,
                              session: EngineSession) -> StatementResult:
        with DatabaseEngine._TxnScope(self, session) as txn:
            info = self.catalog.create_index(
                statement.name, statement.table,
                statement.columns, statement.unique)
            self.txns.log_create_index(txn, self._index_snapshot(info))
            runtime = self._tables.get(info.table_name)
            if runtime is not None:
                runtime.add_index(info)
        return StatementResult.ok(f"index {statement.name} created")

    def _execute_drop_index(self, statement: ast.DropIndexStatement,
                            session: EngineSession) -> StatementResult:
        name = statement.name.lower()
        info = self.catalog.indexes.get(name)
        if info is None:
            raise EngineError(f"index {name!r} does not exist")
        with DatabaseEngine._TxnScope(self, session) as txn:
            self.catalog.drop_index(name)
            self.txns.log_drop_index(txn, self._index_snapshot(info))
            runtime = self._tables.get(info.table_name)
            if runtime is not None:
                runtime.remove_index(name)
        return StatementResult.ok(f"index {name} dropped")

    def _execute_create_procedure(self,
                                  statement: ast.CreateProcedureStatement,
                                  session: EngineSession) -> StatementResult:
        param_names = [name for name, _type in statement.params]
        with DatabaseEngine._TxnScope(self, session) as txn:
            self.catalog.create_procedure(statement.name, param_names,
                                          statement.body_sql)
            self.txns.log_create_procedure(txn, statement.name.lower(),
                                           tuple(param_names),
                                           statement.body_sql)
        self.meter.charge(SERVER_CPU,
                          self.meter.costs.cpu_create_procedure_seconds,
                          "create procedure")
        return StatementResult.ok(f"procedure {statement.name} created")

    def _execute_drop_procedure(self, statement: ast.DropProcedureStatement,
                                session: EngineSession) -> StatementResult:
        info = self.catalog.get_procedure(statement.name)
        with DatabaseEngine._TxnScope(self, session) as txn:
            self.catalog.drop_procedure(info.name)
            self.txns.log_drop_procedure(txn, info.name,
                                         tuple(info.param_names),
                                         info.body_sql)
        return StatementResult.ok(f"procedure {info.name} dropped")

    def _execute_create_view(self, statement: ast.CreateViewStatement,
                             session: EngineSession) -> StatementResult:
        body = parse_statement(statement.body_sql)
        if not isinstance(body, (ast.SelectStatement, ast.UnionSelect)):
            raise PlanningError("a view definition must be a SELECT")
        # Validate the definition by planning it now.
        self._planner(session, None).plan_select(body)
        with DatabaseEngine._TxnScope(self, session) as txn:
            self.catalog.create_view(statement.name, statement.body_sql)
            self.txns.log_create_view(txn, statement.name.lower(),
                                      statement.body_sql)
        return StatementResult.ok(f"view {statement.name} created")

    def _execute_drop_view(self, statement: ast.DropViewStatement,
                           session: EngineSession) -> StatementResult:
        info = self.catalog.get_view(statement.name)
        if info is None:
            raise EngineError(f"view {statement.name!r} does not exist")
        with DatabaseEngine._TxnScope(self, session) as txn:
            self.catalog.drop_view(info.name)
            self.txns.log_drop_view(txn, info.name, info.body_sql)
        return StatementResult.ok(f"view {info.name} dropped")

    def view_provider(self):
        """Closure handed to the planner for view expansion."""

        def provide(name: str):
            info = self.catalog.get_view(name)
            return info.body_sql if info is not None else None

        return provide

    def _execute_proc(self, statement: ast.ExecStatement,
                      session: EngineSession,
                      params: dict) -> StatementResult:
        proc = self.catalog.get_procedure(statement.name)
        planner = self._planner(session, params)
        ctx = EvalContext(row=())
        arg_values = [planner.compile_scalar(a)(ctx) for a in statement.args]
        if len(arg_values) != len(proc.param_names):
            raise EngineError(
                f"procedure {proc.name} expects {len(proc.param_names)} "
                f"arguments, got {len(arg_values)}")
        bound = dict(zip(proc.param_names, arg_values))
        result = StatementResult.ok(f"procedure {proc.name} executed")
        for prepared in self._prepare_script(proc.body_sql):
            self.meter.charge(SERVER_CPU,
                              self.meter.costs.cpu_per_statement_seconds,
                              "proc statement")
            result = self._execute_parsed(prepared.statement, session, bound)
        return result

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _column_from_def(definition: ast.ColumnDef) -> Column:
        sql_type = _TYPE_ALIASES.get(definition.type_name.upper())
        if sql_type is None:
            raise PlanningError(
                f"unknown column type {definition.type_name!r}")
        length = definition.length
        if sql_type.is_text and length == 0:
            length = 32
        return Column(name=definition.name.lower(), sql_type=sql_type,
                      length=length, nullable=definition.nullable
                      and not definition.primary_key)

    @staticmethod
    def _table_snapshot(info: TableInfo) -> dict:
        return {
            "name": info.name,
            "table_id": info.table_id,
            "file_id": info.file_id,
            "columns": [(c.name, c.sql_type.value, c.length, c.nullable)
                        for c in info.columns],
            "amplified": info.amplified,
            "primary_key": list(info.primary_key),
        }

    @staticmethod
    def _index_snapshot(info) -> dict:
        return {
            "name": info.name,
            "table_name": info.table_name,
            "column_names": list(info.column_names),
            "unique": info.unique,
        }

    def _referenced_tables(self, statement: ast.Statement) -> set[str]:
        names: set[str] = set()
        self._collect_tables(statement, names)
        return names

    def _collect_tables(self, node, names: set[str]) -> None:
        if isinstance(node, ast.UnionSelect):
            for select in node.selects:
                self._collect_tables(select, names)
            return
        if isinstance(node, ast.SelectStatement):
            for item in node.from_items:
                self._collect_from_item(item, names)
            for expr_holder in ([i.expr for i in node.select_items]
                                + [node.where, node.having]
                                + node.group_by
                                + [o.expr for o in node.order_by]):
                self._collect_expr_tables(expr_holder, names)
            return
        if isinstance(node, ast.InsertStatement):
            names.add(node.table.lower())
            if node.select is not None:
                self._collect_tables(node.select, names)
            for row_exprs in node.rows:
                for expr in row_exprs:
                    self._collect_expr_tables(expr, names)
            return
        if isinstance(node, ast.UpdateStatement):
            names.add(node.table.lower())
            for _column, expr in node.assignments:
                self._collect_expr_tables(expr, names)
            self._collect_expr_tables(node.where, names)
            return
        if isinstance(node, ast.DeleteStatement):
            names.add(node.table.lower())
            self._collect_expr_tables(node.where, names)

    def _collect_from_item(self, item, names: set[str]) -> None:
        if isinstance(item, ast.TableName):
            names.add(item.name.lower())
        elif isinstance(item, ast.DerivedTable):
            self._collect_tables(item.select, names)
        elif isinstance(item, ast.Join):
            self._collect_from_item(item.left, names)
            self._collect_from_item(item.right, names)
            self._collect_expr_tables(item.condition, names)

    def _collect_expr_tables(self, expr, names: set[str]) -> None:
        if expr is None or not isinstance(expr, ast.Expr):
            return
        if isinstance(expr, (ast.ScalarSubquery, ast.Exists)):
            self._collect_tables(expr.subquery, names)
            return
        if isinstance(expr, ast.InSubquery):
            self._collect_tables(expr.subquery, names)
            self._collect_expr_tables(expr.operand, names)
            return
        from repro.sql.expressions import _children

        for child in _children(expr):
            self._collect_expr_tables(child, names)

"""Statement results returned by the engine.

``StatementResult`` is what one executed statement produces *inside the
server*: a lazy row stream with column metadata, an affected-row count, or
a bare acknowledgement.  The server layer wraps row streams into
:class:`~repro.server.server.ServerResultSet` objects that add the network
output-buffer semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.types import Column


@dataclass
class StatementResult:
    """Outcome of one statement execution."""

    kind: str  # 'rows' | 'rowcount' | 'ok'
    columns: list[Column] = field(default_factory=list)
    rows: object = None           # lazy iterator of tuples (kind == 'rows')
    rowcount: int = -1            # kind == 'rowcount'
    message: str = ""
    #: True when the row stream is a bare table scan that the server can
    #: deliver page-at-a-time (see executor.is_streamable_plan).
    streamable: bool = False
    #: For SELECT results while the shared result cache is enabled: the
    #: per-table DML version of every table the plan reads (the cache
    #: entry's validity certificate), or None when the result must not
    #: be cached (temp tables, sys_* views, Phoenix overhead tables —
    #: or the knob is off).
    read_versions: dict | None = None

    @classmethod
    def of_rows(cls, columns: list[Column], rows) -> "StatementResult":
        return cls(kind="rows", columns=columns, rows=rows)

    @classmethod
    def of_rowcount(cls, count: int, message: str = "") -> "StatementResult":
        return cls(kind="rowcount", rowcount=count, message=message)

    @classmethod
    def ok(cls, message: str = "") -> "StatementResult":
        return cls(kind="ok", message=message)

    @property
    def returns_rows(self) -> bool:
        return self.kind == "rows"

    def fetch_all(self) -> list[tuple]:
        """Drain the row stream (testing convenience)."""
        if not self.returns_rows:
            raise ValueError("statement did not return rows")
        return list(self.rows)

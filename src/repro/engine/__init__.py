"""The database engine: the stand-in for SQL Server 7.0.

Combines the storage, WAL, transaction and SQL substrates into a facade
(:class:`~repro.engine.database.DatabaseEngine`) that executes SQL text
under a server session.  Crash/restart semantics live one level up, in
:mod:`repro.server` — the engine object itself is volatile and is rebuilt
from the (surviving) disk and log by :meth:`DatabaseEngine.restart`.
"""

from repro.engine.database import DatabaseEngine
from repro.engine.results import StatementResult
from repro.engine.session import EngineSession
from repro.engine.table import Table

__all__ = ["DatabaseEngine", "StatementResult", "EngineSession", "Table"]

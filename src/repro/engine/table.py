"""Table runtime: heap + indexes + logged, index-maintained mutations.

One :class:`Table` object per open table.  All mutations flow through
:meth:`insert`, :meth:`delete` and :meth:`update`, which follow the WAL
rule (log first via the transaction manager, then touch pages, then fix
indexes) and charge CPU/log costs scaled by the table's amplification
factor.

Volatile (temp) tables skip logging entirely: they die with the server
session, which is exactly the property Phoenix exploits to detect whether
a post-reconnect server session is the same one it had before.
"""

from __future__ import annotations

from itertools import groupby

from repro.errors import ConstraintError
from repro.sim.costs import SERVER_CPU
from repro.storage.btree import BTree, NullKey, encode_key
from repro.storage.catalog import IndexInfo, TableInfo
from repro.storage.heap import HeapFile, RowId
from repro.txn.manager import Transaction, TransactionManager


class Table:
    """Runtime handle for one table."""

    def __init__(self, info: TableInfo, heap: HeapFile, meter=None):
        self.info = info
        self.heap = heap
        self._meter = meter
        self._indexes: dict[str, tuple[IndexInfo, BTree]] = {}
        #: index name -> column positions, memoized off the DML hot path
        self._key_positions: dict[str, list[int]] = {}
        #: primary-key column positions for row_lock_key, memoized
        self._pk_positions: list[int] | None = None
        if info.primary_key:
            # Built from the heap, not created empty: a runtime attached
            # to a non-empty heap (restart recovery, re-materialization
            # after cache eviction) must start with a complete PK tree —
            # incremental index maintenance during redo/undo relies on
            # every tree reflecting the heap it was attached to.
            self.add_index(IndexInfo(name=f"__pk_{info.name}",
                                     table_name=info.name,
                                     column_names=info.primary_key,
                                     unique=True),
                           enforce_unique=False)

    # -- planner interface ------------------------------------------------------

    @property
    def cost_factor(self) -> float:
        """Work amplification for base tables; 1.0 for Phoenix/temp tables."""
        if self._meter is None or not self.info.amplified:
            return 1.0
        return self._meter.costs.work_amplification

    def indexes(self) -> list[IndexInfo]:
        return [info for info, _tree in self._indexes.values()]

    def index_info(self, name: str) -> IndexInfo:
        return self._indexes[name.lower()][0]

    def index_tree(self, name: str) -> BTree:
        return self._indexes[name.lower()][1]

    def has_index(self, name: str) -> bool:
        return name.lower() in self._indexes

    def scan_pages(self):
        """Page-block scan for the batch executor (see HeapFile.scan_pages)."""
        return self.heap.scan_pages()

    def row_lock_key(self, row: tuple) -> tuple:
        """Primary-key tuple identifying ``row`` for the row lock manager.

        Row locks are logical (keyed by primary key, not rid) so a lock
        survives physical movement and a retried statement re-locks the
        same resource.  Only called for tables with a primary key.
        """
        positions = self._pk_positions
        if positions is None:
            positions = self._pk_positions = [
                self.info.column_index(c) for c in self.info.primary_key]
        return tuple(row[p] for p in positions)

    # -- index management ----------------------------------------------------

    def add_index(self, info: IndexInfo,
                  enforce_unique: bool = True) -> None:
        """Register an index and build it from the current heap contents.

        ``enforce_unique=False`` is the attach-time mode: a heap read
        mid-recovery can transiently hold two rows with one unique key
        (a stale pre-delete page plus a flushed re-insert), and redo
        resolves that — so the build tolerates duplicates there, while
        user ``CREATE UNIQUE INDEX`` keeps raising on real ones.
        """
        tree = BTree(unique=info.unique)
        positions = [self.info.column_index(c) for c in info.column_names]
        for rid, row in self.heap.scan():
            tree.insert(encode_key(row[p] for p in positions), rid,
                        enforce_unique=enforce_unique)
        self._indexes[info.name.lower()] = (info, tree)
        self._key_positions.pop(info.name, None)

    def remove_index(self, name: str) -> None:
        self._indexes.pop(name.lower(), None)
        self._key_positions.pop(name, None)

    def rebuild_indexes(self) -> None:
        """Rebuild every index from the heap (after restart recovery)."""
        infos = [info for info, _tree in self._indexes.values()]
        self._indexes.clear()
        for info in infos:
            self.add_index(info)

    def _index_key(self, row: tuple, info: IndexInfo) -> tuple:
        positions = self._key_positions.get(info.name)
        if positions is None:
            positions = [self.info.column_index(c)
                         for c in info.column_names]
            self._key_positions[info.name] = positions
        return encode_key(row[p] for p in positions)

    # -- mutations ----------------------------------------------------------

    def insert(self, row: tuple, txn: Transaction | None,
               txns: TransactionManager | None) -> RowId:
        """Insert ``row``; raises ConstraintError on unique violations."""
        self._check_unique(row)
        rid = self.heap.find_insert_target()
        lsn = 0
        if not self.info.volatile and txn is not None and txns is not None:
            lsn = txns.log_insert(txn, self.info.name, rid, row,
                                  self.cost_factor)
        self.heap.apply_insert(rid, row, lsn)
        for info, tree in self._indexes.values():
            tree.insert(self._index_key(row, info), rid)
        self._charge_dml("cpu_per_tuple_insert")
        return rid

    def delete(self, rid: RowId, txn: Transaction | None,
               txns: TransactionManager | None) -> tuple:
        row = self.heap.read(rid)
        if row is None:
            raise ValueError(f"no row at {rid}")
        lsn = 0
        if not self.info.volatile and txn is not None and txns is not None:
            lsn = txns.log_delete(txn, self.info.name, rid, row,
                                  self.cost_factor)
        self.heap.apply_delete(rid, lsn)
        for info, tree in self._indexes.values():
            tree.delete(self._index_key(row, info), rid)
        self._charge_dml("cpu_per_tuple_delete")
        return row

    def update(self, rid: RowId, new_row: tuple, txn: Transaction | None,
               txns: TransactionManager | None) -> tuple:
        old_row = self.heap.read(rid)
        if old_row is None:
            raise ValueError(f"no row at {rid}")
        self._check_unique(new_row, ignore_rid=rid)
        lsn = 0
        if not self.info.volatile and txn is not None and txns is not None:
            lsn = txns.log_update(txn, self.info.name, rid, old_row,
                                  new_row, self.cost_factor)
        self.heap.apply_update(rid, new_row, lsn)
        for info, tree in self._indexes.values():
            old_key = self._index_key(old_row, info)
            new_key = self._index_key(new_row, info)
            if old_key != new_key:
                tree.delete(old_key, rid)
                tree.insert(new_key, rid)
        self._charge_dml("cpu_per_tuple_update")
        return old_row

    # -- recovery-side (already-logged) mutations ---------------------------
    #
    # Index inserts here never enforce uniqueness: repeating history can
    # transiently duplicate a unique key (e.g. redo replays an insert of
    # a key the attach-time tree build already picked up from a flushed
    # re-insert; the delete between them replays later).  Recovery
    # re-validates every touched unique tree once undo completes.

    def apply_insert_with_indexes(self, rid: RowId, row: tuple,
                                  lsn: int) -> None:
        self.heap.apply_insert(rid, row, lsn)
        for info, tree in self._indexes.values():
            tree.insert(self._index_key(row, info), rid,
                        enforce_unique=False)

    def apply_delete_with_indexes(self, rid: RowId, lsn: int) -> None:
        row = self.heap.read(rid)
        if row is None:
            return
        self.heap.apply_delete(rid, lsn)
        for info, tree in self._indexes.values():
            tree.delete(self._index_key(row, info), rid)

    def apply_update_with_indexes(self, rid: RowId, new_row: tuple,
                                  lsn: int) -> None:
        old_row = self.heap.read(rid)
        if old_row is None:
            return
        self.heap.apply_update(rid, new_row, lsn)
        for info, tree in self._indexes.values():
            old_key = self._index_key(old_row, info)
            new_key = self._index_key(new_row, info)
            if old_key != new_key:
                tree.delete(old_key, rid)
                tree.insert(new_key, rid, enforce_unique=False)

    def validate_unique_indexes(self) -> None:
        """Assert every unique tree holds exactly one rid per key.

        Called by restart recovery after undo: transient duplicates
        admitted while repeating history must all have resolved.
        """
        for info, tree in self._indexes.values():
            if not info.unique:
                continue
            for key, rids in _grouped(tree.items()):
                if len(rids) > 1:
                    raise ConstraintError(
                        f"unique index {info.name!r} of {self.info.name!r} "
                        f"holds {len(rids)} rows for key {key!r} after "
                        f"recovery")

    # -- internals ----------------------------------------------------------

    def _check_unique(self, row: tuple, ignore_rid: RowId | None = None) -> None:
        for info, tree in self._indexes.values():
            if not info.unique:
                continue
            key = self._index_key(row, info)
            if any(isinstance(v, NullKey) for v in key):
                raise ConstraintError(
                    f"NULL in unique key {info.name!r} of {self.info.name!r}")
            hits = tree.search(key)
            if hits and (ignore_rid is None or hits != [ignore_rid]):
                raise ConstraintError(
                    f"duplicate key {key!r} in {self.info.name!r}")

    def _charge_dml(self, cost_attr: str) -> None:
        if self._meter is None:
            return
        seconds = getattr(self._meter.costs, cost_attr) * self.cost_factor
        self._meter.charge_batched(SERVER_CPU, seconds, cost_attr)


def _grouped(entries):
    """Group an ordered ``(key, rid)`` stream by key (duplicates are
    adjacent in a B-tree walk)."""
    for key, group in groupby(entries, key=lambda kv: kv[0]):
        yield key, [rid for _key, rid in group]

"""Server-side sessions.

An :class:`EngineSession` is the *database session* of the paper: the
volatile server-side state tied to one client connection — temp tables,
the in-flight transaction, and session settings.  It is destroyed by a
crash (and by normal disconnect), which is why Phoenix has to reconstruct
everything it needs from persistent tables afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.table import Table
from repro.sql.plan_cache import LRUCache
from repro.txn.manager import Transaction


@dataclass
class EngineSession:
    """Volatile per-connection server state."""

    session_id: int
    temp_tables: dict[str, Table] = field(default_factory=dict)
    current_txn: Transaction | None = None
    settings: dict[str, object] = field(default_factory=dict)
    #: Plans that reference this session's temp tables; they die with the
    #: session (disconnect or crash), like the temp tables themselves.
    plan_cache: LRUCache = field(default_factory=lambda: LRUCache(32))

    @property
    def in_transaction(self) -> bool:
        return self.current_txn is not None and self.current_txn.is_active

    def temp_table(self, name: str) -> Table | None:
        return self.temp_tables.get(name.lower())

    def set_option(self, name: str, value) -> None:
        self.settings[name.lower()] = value

    def get_option(self, name: str, default=None):
        return self.settings.get(name.lower(), default)

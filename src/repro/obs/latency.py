"""The request latency ledger: where did each request's seconds go?

Every protocol exchange (one :class:`~repro.server.protocol.Request`
sent through :class:`~repro.server.network.SimulatedNetwork`) gets a
:class:`LedgerEntry` that attributes its end-to-end virtual latency to
named components — uplink, parse/plan, engine execution, WAL force,
checkpoint work piggybacked on the request, queueing, prefetch stall —
plus the overlap-hidden time of pipelined requests (service that ran
while the client computed and therefore never reached the clock).

The accounting identity
-----------------------

The ledger's contract is exact: for every entry, the per-component sums
equal the entry's total *bit-for-bit*.  Floats are dyadic rationals, so
each charged ``seconds`` converts losslessly to a
:class:`fractions.Fraction`; accumulating Fractions is exact and
associative, which makes ``sum(components) == total`` a hard equality
rather than a tolerance check.  A second, clock-side check guards
against bypass: for synchronous clocked entries the virtual clock must
move by the attributed total (within float-fold rounding).  Violations
of either are recorded in :attr:`LatencyLedger.identity_violations` —
tests assert the list stays empty across the tracked wallclock mix and
the crash fuzzers.

The ledger is disabled by default (``REPRO_LATENCY=1``, ``REPRO_TRACE=1``
or :meth:`~repro.sim.meter.Meter.enable_latency_ledger` turn it on) and
never charges or flushes on its own, so enabling it cannot move the
virtual clock: traced and untraced runs stay bit-identical.
"""

from __future__ import annotations

import os
from collections import deque
from fractions import Fraction

from repro.sim.costs import CLIENT_CPU, NETWORK, SERVER_CPU, SERVER_DISK

__all__ = ["COMPONENTS", "LatencyLedger", "LedgerEntry", "classify",
           "latency_enabled_from_env", "format_latency_report"]

#: Canonical component order (reports and views render in this order).
COMPONENTS: tuple[str, ...] = (
    "client_cpu", "net_uplink", "net_downlink", "server_queue",
    "parse_plan", "engine_execute", "wal_force", "checkpoint",
    "prefetch_stall", "lock_wait", "cache", "other")

_ZERO = Fraction(0)

#: NETWORK charge notes with a fixed component.
_NETWORK_NOTES = {
    "request": "net_uplink",
    "refused": "net_uplink",
    "response": "net_downlink",
    "prefetch stall": "prefetch_stall",
    "pipeline stall": "server_queue",
}

#: SERVER_CPU notes that are planning/compilation rather than execution.
_PARSE_PLAN_NOTES = frozenset(
    {"statement parse/plan", "proc statement", "subquery eval"})

#: CLIENT_CPU notes that are result-cache work (client-side delivery
#: from the §4 cache or the shared result cache, and its probes).
_CACHE_NOTES = frozenset(
    {"cache fetch", "cache scroll", "cache block fetch",
     "result cache probe"})


def latency_enabled_from_env() -> bool:
    """``REPRO_LATENCY=1`` (or any non-empty, non-zero value) turns the
    ledger on for every world built in the process."""
    return os.environ.get("REPRO_LATENCY", "").strip() not in ("", "0")


def classify(resource: str, note: str, hint: str | None = None) -> str:
    """Map one charge to its latency component.

    ``hint`` wins when set — it is how work that is mechanically
    indistinguishable by (resource, note) gets attributed to the
    activity that caused it (checkpoints piggybacked on a commit charge
    the same ``page io``/``log force`` notes ordinary execution does).
    """
    if hint is not None:
        return hint
    if resource == NETWORK:
        return _NETWORK_NOTES.get(note, "other")
    if resource == SERVER_CPU:
        if note == "lock wait":
            # Row-granularity waiter stall, charged by the concurrent
            # scheduler inside an overlap window.  Never emitted on a
            # serial mix, so the tracked baseline stays untouched.
            return "lock_wait"
        return ("parse_plan" if note in _PARSE_PLAN_NOTES
                else "engine_execute")
    if resource == SERVER_DISK:
        return "wal_force" if note == "log force" else "engine_execute"
    if resource == CLIENT_CPU:
        if note in _CACHE_NOTES:
            return "cache"
        # The only other client CPU booked *inside* an exchange is the
        # driver timeout spent waiting on a dead server — queueing, not
        # compute.
        return "server_queue" if note == "request timeout" else "client_cpu"
    return "other"


class LedgerEntry:
    """Exact per-component attribution of one protocol request."""

    __slots__ = ("kind", "start", "end", "clocked", "overlapped",
                 "wasted", "closed", "total", "components", "hidden")

    def __init__(self, kind: str, start: float, clocked: bool):
        self.kind = kind
        self.start = start
        self.end = start
        #: Whether the serial clock was authoritative at open (False in
        #: multi-stream worlds, where elapsed time belongs to the
        #: queueing simulator and the clock-consistency check is moot).
        self.clocked = clocked
        #: Entries detached for pipelined delivery stay open across
        #: unrelated client work, so start..end is not their latency.
        self.overlapped = False
        #: Closed without its response ever being delivered (prefetched
        #: batch discarded after a crash, abandoned pipeline booking).
        self.wasted = False
        self.closed = False
        #: Exact total of every clocked charge recorded into this entry.
        self.total = _ZERO
        self.components: dict[str, Fraction] = {}
        #: Service recorded inside overlap windows: real resource usage
        #: that never reached the clock (it ran under client compute).
        #: Kept out of ``total`` — the identity covers clocked time.
        self.hidden = _ZERO

    def add(self, resource: str, seconds: float, note: str,
            hidden: bool, hint: str | None) -> None:
        """Record one charge (called from ``Meter.charge``)."""
        fraction = Fraction(seconds)
        if hidden:
            self.hidden += fraction
            return
        component = classify(resource, note, hint)
        self.total += fraction
        self.components[component] = (
            self.components.get(component, _ZERO) + fraction)

    def add_attributed(self, component: str, seconds: float) -> None:
        """Record clock time that bypassed ``charge`` (the realized
        cost of a failed overlapped exchange) under ``component``."""
        fraction = Fraction(seconds)
        self.total += fraction
        self.components[component] = (
            self.components.get(component, _ZERO) + fraction)

    def identity_holds(self) -> bool:
        """Exact: per-component sums equal the recorded total."""
        return sum(self.components.values(), _ZERO) == self.total

    @property
    def total_seconds(self) -> float:
        return float(self.total)

    @property
    def hidden_seconds(self) -> float:
        return float(self.hidden)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LedgerEntry({self.kind}, total={float(self.total):.6f}, "
                f"closed={self.closed})")


class _KindStats:
    """Aggregated ledger state of one request kind."""

    __slots__ = ("count", "wasted", "samples", "samples_dropped",
                 "total", "hidden", "components", "max")

    def __init__(self):
        self.count = 0
        self.wasted = 0
        #: Retained per-request latencies (exact percentiles come from
        #: these; a cap keeps soak runs bounded — beyond it the counts
        #: keep growing but new samples are dropped and counted).
        self.samples: list[float] = []
        self.samples_dropped = 0
        self.total = _ZERO
        self.hidden = _ZERO
        self.components: dict[str, Fraction] = {}
        self.max = 0.0


class LatencyLedger:
    """Per-request latency entries + per-kind rollups for one world.

    Lifecycle: the network :meth:`open`\\ s an entry per exchange and
    closes it when the response (or error) surfaces.  Pipelined
    exchanges are :meth:`detach`\\ ed instead — the entry stays open,
    rides on the in-flight batch, and is :meth:`resume`\\ d when the
    driver realizes the batch's stall (or closed ``wasted`` when a
    crash discards it).  Charges always land in the innermost open
    entry; with no entry open they only move the clock, as before.
    """

    def __init__(self, enabled: bool = False, entry_capacity: int = 8192,
                 sample_capacity: int = 100_000):
        self.enabled = enabled
        self.entry_capacity = entry_capacity
        self.sample_capacity = sample_capacity
        #: Innermost open entry — the meter reads this on every charge.
        self.current: LedgerEntry | None = None
        self._stack: list[LedgerEntry] = []
        #: Most recent finalized entries, oldest first.
        self.entries: deque[LedgerEntry] = deque(maxlen=entry_capacity)
        self.kinds: dict[str, _KindStats] = {}
        #: Accounting-identity violations (strings); the hard contract
        #: is that this stays empty — tests assert it.
        self.identity_violations: list[str] = []
        self.opened = 0
        self.closed = 0

    # -- entry lifecycle ----------------------------------------------------

    def open(self, kind: str, start: float, clocked: bool) -> LedgerEntry:
        entry = LedgerEntry(kind, start, clocked)
        self._stack.append(entry)
        self.current = entry
        self.opened += 1
        return entry

    def detach(self, entry: LedgerEntry) -> None:
        """Remove ``entry`` from the open stack without closing it."""
        entry.overlapped = True
        if entry in self._stack:
            self._stack.remove(entry)
        self.current = self._stack[-1] if self._stack else None

    def resume(self, entry: LedgerEntry) -> None:
        """Make a detached entry current again (stall realization)."""
        self._stack.append(entry)
        self.current = entry

    def close(self, entry: LedgerEntry, end: float,
              wasted: bool = False) -> None:
        if entry.closed:
            return
        entry.closed = True
        entry.end = end
        entry.wasted = wasted
        if entry in self._stack:
            self._stack.remove(entry)
        self.current = self._stack[-1] if self._stack else None
        self.closed += 1
        self._check_identity(entry)
        self._finalize(entry)

    # -- identity -----------------------------------------------------------

    def _check_identity(self, entry: LedgerEntry) -> None:
        if not entry.identity_holds():
            self.identity_violations.append(
                f"{entry.kind}: components sum to "
                f"{float(sum(entry.components.values(), _ZERO))!r}, "
                f"total is {float(entry.total)!r}")
        if entry.clocked and not entry.overlapped:
            # Synchronous entry: the clock must have moved by exactly
            # the attributed total.  start/end are float clock reads, so
            # allow float-fold rounding — anything larger means a charge
            # (or a raw clock advance) bypassed the ledger.
            span = entry.end - entry.start
            drift = abs(span - float(entry.total))
            if drift > 1e-9 + 1e-9 * abs(span):
                self.identity_violations.append(
                    f"{entry.kind}: clock moved {span!r} but ledger "
                    f"attributed {float(entry.total)!r}")

    def _finalize(self, entry: LedgerEntry) -> None:
        stats = self.kinds.get(entry.kind)
        if stats is None:
            stats = _KindStats()
            self.kinds[entry.kind] = stats
        stats.count += 1
        if entry.wasted:
            stats.wasted += 1
        stats.total += entry.total
        stats.hidden += entry.hidden
        for component, fraction in entry.components.items():
            stats.components[component] = (
                stats.components.get(component, _ZERO) + fraction)
        latency = float(entry.total)
        if latency > stats.max:
            stats.max = latency
        if len(stats.samples) < self.sample_capacity:
            stats.samples.append(latency)
        else:
            stats.samples_dropped += 1
        self.entries.append(entry)

    # -- reading ------------------------------------------------------------

    def kind_percentiles(self, kind: str) -> tuple[float, float, float]:
        """(p50, p95, p99) of the retained samples of ``kind``."""
        from repro.obs.metrics import percentile

        stats = self.kinds.get(kind)
        if stats is None or not stats.samples:
            return (0.0, 0.0, 0.0)
        ordered = sorted(stats.samples)
        return (percentile(ordered, 0.50), percentile(ordered, 0.95),
                percentile(ordered, 0.99))

    def component_totals(self) -> dict[str, float]:
        """Aggregate per-component seconds across every request kind."""
        totals: dict[str, Fraction] = {}
        for stats in self.kinds.values():
            for component, fraction in stats.components.items():
                totals[component] = totals.get(component, _ZERO) + fraction
        return {component: float(totals[component])
                for component in totals}

    def total_attributed_seconds(self) -> float:
        return float(sum((stats.total for stats in self.kinds.values()),
                         _ZERO))

    def hidden_seconds(self) -> float:
        return float(sum((stats.hidden for stats in self.kinds.values()),
                         _ZERO))

    def rows(self) -> list[tuple]:
        """Per-kind (kind, count, wasted, p50, p95, p99, max, total,
        hidden) rows for the ``sys_latency`` view and the exporter."""
        out = []
        for kind in sorted(self.kinds):
            stats = self.kinds[kind]
            p50, p95, p99 = self.kind_percentiles(kind)
            out.append((kind, stats.count, stats.wasted, p50, p95, p99,
                        stats.max, float(stats.total),
                        float(stats.hidden)))
        return out

    def export_records(self) -> list[dict]:
        """One ``latency`` JSONL record per request kind."""
        records = []
        for (kind, count, wasted, p50, p95, p99, peak, total,
             hidden) in self.rows():
            stats = self.kinds[kind]
            records.append({
                "type": "latency", "kind": kind, "count": count,
                "wasted": wasted, "p50": p50, "p95": p95, "p99": p99,
                "max": peak, "total": total, "hidden": hidden,
                "components": {component: float(fraction)
                               for component, fraction
                               in sorted(stats.components.items())},
            })
        return records

    def reset(self) -> None:
        self.current = None
        self._stack.clear()
        self.entries.clear()
        self.kinds.clear()
        self.identity_violations.clear()
        self.opened = 0
        self.closed = 0


def format_latency_report(ledger: LatencyLedger,
                          source: str = "live") -> str:
    """Render the per-kind SLO table + the component attribution table."""
    from repro.bench.reporting import format_table

    total_requests = sum(stats.count for stats in ledger.kinds.values())
    kind_rows = [[kind, count, f"{p50:.6f}", f"{p95:.6f}", f"{p99:.6f}",
                  f"{peak:.6f}", f"{total:.6f}"]
                 for (kind, count, _wasted, p50, p95, p99, peak, total,
                      _hidden) in ledger.rows()]
    blocks = [format_table(
        f"Request latency by kind: {source} ({total_requests} requests, "
        f"virtual seconds)",
        ["Kind", "Count", "P50", "P95", "P99", "Max", "Total"],
        kind_rows)]

    totals = ledger.component_totals()
    grand = ledger.total_attributed_seconds()
    component_rows = []
    for component in COMPONENTS:
        seconds = totals.get(component, 0.0)
        if seconds == 0.0:
            continue
        share = 100.0 * seconds / grand if grand else 0.0
        component_rows.append([component, f"{seconds:.6f}",
                               f"{share:.1f}%"])
    blocks.append(format_table(
        "Where the virtual seconds went (all request kinds)",
        ["Component", "Seconds", "Share"], component_rows))

    hidden = ledger.hidden_seconds()
    lines = [f"attributed total: {grand:.6f}s across "
             f"{total_requests} requests"]
    if hidden:
        lines.append(f"overlap-hidden service (ran under client compute, "
                     f"never clocked): {hidden:.6f}s")
    wasted = sum(stats.wasted for stats in ledger.kinds.values())
    if wasted:
        lines.append(f"wasted requests (produced but never delivered): "
                     f"{wasted}")
    if ledger.identity_violations:
        lines.append(f"ACCOUNTING IDENTITY VIOLATED "
                     f"({len(ledger.identity_violations)}):")
        lines.extend(f"  {violation}"
                     for violation in ledger.identity_violations[:10])
    else:
        lines.append("accounting identity: every request's components "
                     "sum bit-exactly to its measured latency")
    blocks.append("\n".join(lines))
    return "\n\n".join(blocks)

"""Queryable ``sys_*`` views and the registry they plug into.

A system view is a function ``fn(engine) -> (columns, rows)`` registered
under its table name with :func:`system_view`.  The engine resolves any
table name found in :data:`SYSTEM_VIEWS` by materializing the function's
rows into a volatile snapshot table — rebuilt (and charged) per
reference, exactly like SQL Server's system tables.

The engine registers its catalog views (``sys_tables``, ...) in
:mod:`repro.engine.database`; this module registers the observability
views:

* ``sys_traces`` — finished spans of the world's tracer;
* ``sys_metrics`` — every counter/gauge/histogram bucket;
* ``sys_locks`` — held table/row locks with modes and waiters;
* ``sys_recovery_phases`` — per-phase virtual-time breakdown of each
  Phoenix session recovery;
* ``sys_plan_cache`` — statement/plan cache statistics, including
  per-session temp-table plan counts and LRU evictions;
* ``sys_executor`` — batch-execution diagnostics: batches per operator
  class, point-lookup fast-path hits, compiled-expression cache traffic;
* ``sys_network`` — wire traffic and pipelining: round trips (total and
  per request kind), wire bytes up/down, fetch-ahead hit/waste counts
  and overlap seconds, persist-pipeline bookings and stalls;
* ``sys_result_cache`` — shared-result-cache traffic: hits, misses,
  insertions, evictions and invalidations, with per-table breakdowns.

View functions only read engine/meter state; they import nothing from
the engine so the registry itself stays dependency-free.
"""

from __future__ import annotations

from typing import Callable

from repro.types import Column, SqlType

#: table name -> fn(engine) -> (columns, rows)
SYSTEM_VIEWS: dict[str, Callable] = {}


def system_view(name: str):
    """Decorator registering a system-view builder under ``name``."""

    def register(fn: Callable) -> Callable:
        SYSTEM_VIEWS[name.lower()] = fn
        return fn

    return register


def _render_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    text = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    return text[:200]


@system_view("sys_traces")
def _sys_traces(engine):
    columns = [Column("span_id", SqlType.INTEGER),
               Column("parent_id", SqlType.INTEGER),
               Column("name", SqlType.VARCHAR, 48),
               Column("layer", SqlType.VARCHAR, 24),
               Column("kind", SqlType.VARCHAR, 8),
               Column("status", SqlType.VARCHAR, 8),
               Column("start_s", SqlType.FLOAT),
               Column("end_s", SqlType.FLOAT),
               Column("duration_s", SqlType.FLOAT),
               Column("attrs", SqlType.VARCHAR, 200)]
    tracer = engine.meter.obs.tracer
    # The newest spans matter most; cap the snapshot so one view query
    # does not insert tens of thousands of volatile rows.
    recent = list(tracer.finished)[-1000:]
    rows = [(s.span_id, s.parent_id, s.name, s.layer, s.kind, s.status,
             s.start, s.end, s.duration, _render_attrs(s.attrs))
            for s in recent]
    return columns, rows


@system_view("sys_metrics")
def _sys_metrics(engine):
    columns = [Column("kind", SqlType.VARCHAR, 12),
               Column("name", SqlType.VARCHAR, 64),
               Column("bucket", SqlType.VARCHAR, 16),
               Column("value", SqlType.FLOAT)]
    return columns, engine.meter.obs.metrics.rows()


@system_view("sys_locks")
def _sys_locks(engine):
    """Held locks by table and granularity, with registered waiters.

    One row per (resource, holder).  ``lock_key`` is empty for
    table-granularity locks and the repr of the primary-key tuple for
    row locks; ``waiters`` lists transactions currently registered as
    waiting on that holder (row granularity only — the seed's no-wait
    policy never queues anyone).
    """
    columns = [Column("table_name", SqlType.VARCHAR, 64),
               Column("granularity", SqlType.VARCHAR, 8),
               Column("lock_key", SqlType.VARCHAR, 80),
               Column("mode", SqlType.VARCHAR, 4),
               Column("txn_id", SqlType.INTEGER),
               Column("waiters", SqlType.VARCHAR, 80)]
    rows = [(table, granularity, key[:80], mode, txn_id, waiters[:80])
            for table, granularity, key, mode, txn_id, waiters
            in engine.locks.snapshot()]
    return columns, rows


@system_view("sys_recovery_phases")
def _sys_recovery_phases(engine):
    columns = [Column("recovery_id", SqlType.INTEGER),
               Column("phase", SqlType.VARCHAR, 24),
               Column("seconds", SqlType.FLOAT),
               Column("finished_at", SqlType.FLOAT)]
    rows = [(record["recovery_id"], phase, seconds,
             record["finished_at"])
            for record in engine.meter.obs.recovery_log
            for phase, seconds in record["phases"]]
    return columns, rows


@system_view("sys_executor")
def _sys_executor(engine):
    """Batch-executor diagnostics.

    Per-world counters come from ``meter.executor_stats`` (kept separate
    from ``meter.counters`` so virtual-output equivalence comparisons are
    not perturbed by host-side bookkeeping); ``expr_*`` compile totals
    come from the process-wide :data:`repro.sql.expressions.EXPR_STATS`.
    """
    from repro.sql.expressions import EXPR_STATS

    columns = [Column("metric", SqlType.VARCHAR, 48),
               Column("value", SqlType.BIGINT)]
    stats = engine.meter.executor_stats
    rows = [(name, int(stats[name])) for name in sorted(stats)]
    rows += [(name, int(EXPR_STATS[name])) for name in sorted(EXPR_STATS)]
    # Async-commit traffic lives in the deterministic world counters
    # (the windows/deferrals split is part of the simulated WAL
    # behaviour, not host bookkeeping), but it belongs in the executor
    # diagnostics next to the per-operator scan counts.
    counters = engine.meter.counters
    rows += [(name, int(counters[name]))
             for name in ("async_commit_deferrals", "async_commit_windows")
             if name in counters]
    return columns, rows


@system_view("sys_network")
def _sys_network(engine):
    """Network/pipelining observability (the round-trip ledger).

    Everything here comes from world counters maintained by
    :class:`~repro.server.network.SimulatedNetwork` (``net.*``) and the
    driver's pipelined-delivery layer (``prefetch_*`` / ``pipeline_*``).
    Notable derivations: ``prefetch_overlap_seconds`` is already net of
    each batch's realized stall, while the persist pipeline's saved time
    is ``pipeline_overlap_seconds - pipeline_stall_seconds``.
    """
    columns = [Column("metric", SqlType.VARCHAR, 64),
               Column("value", SqlType.FLOAT)]
    counters = engine.meter.counters
    rows = [(name, float(counters[name]))
            for name in sorted(counters)
            if name.startswith(("net.", "prefetch_", "pipeline_"))]
    return columns, rows


@system_view("sys_result_cache")
def _sys_result_cache(engine):
    """Shared-result-cache observability (hit/miss/invalidation traffic).

    Everything here comes from the ``result_cache.*`` world counters
    maintained by :class:`~repro.phoenix.result_cache.SharedResultCache`
    — totals plus the per-table ``result_cache.hits.<t>`` /
    ``result_cache.misses.<t>`` / ``result_cache.invalidations.<t>``
    families.  Empty while ``result_cache_entries`` is 0 (seed runs).
    """
    columns = [Column("metric", SqlType.VARCHAR, 80),
               Column("value", SqlType.BIGINT)]
    counters = engine.meter.counters
    rows = [(name, int(counters[name]))
            for name in sorted(counters)
            if name.startswith("result_cache.")]
    return columns, rows


@system_view("sys_optimizer")
def _sys_optimizer(engine):
    """Cost-based-optimizer observability (the ``optimizer.*`` family).

    Counters accumulate at plan time and only in cost mode
    (``optimizer_mode = 'cost'``): plans costed, join orders enumerated,
    Top-N heap sorts and sort-merge joins chosen, and how often the
    planner fell back to defaults because a table was never ANALYZEd.
    Empty on heuristic legs — the sentinel holds that at zero growth.
    """
    columns = [Column("metric", SqlType.VARCHAR, 64),
               Column("value", SqlType.BIGINT)]
    counters = engine.meter.counters
    rows = [(name, int(counters[name]))
            for name in sorted(counters)
            if name.startswith("optimizer.")]
    return columns, rows


@system_view("sys_latency")
def _sys_latency(engine):
    """Per-request-kind latency SLOs from the request latency ledger.

    Percentiles are exact (linear interpolation over retained samples,
    see :func:`repro.obs.metrics.percentile`), and ``identity_ok``
    reports the ledger-wide accounting identity: 1 iff every closed
    entry's per-component attribution summed bit-exactly to its
    measured latency.  Empty while the ledger is disabled
    (``REPRO_LATENCY=1`` / ``REPRO_TRACE=1`` turn it on).
    """
    columns = [Column("kind", SqlType.VARCHAR, 32),
               Column("count", SqlType.BIGINT),
               Column("wasted", SqlType.BIGINT),
               Column("p50_s", SqlType.FLOAT),
               Column("p95_s", SqlType.FLOAT),
               Column("p99_s", SqlType.FLOAT),
               Column("max_s", SqlType.FLOAT),
               Column("total_s", SqlType.FLOAT),
               Column("hidden_s", SqlType.FLOAT),
               Column("identity_ok", SqlType.INTEGER)]
    ledger = engine.meter.obs.latency
    ok = 0 if ledger.identity_violations else 1
    rows = [(kind, count, wasted, p50, p95, p99, peak, total, hidden, ok)
            for (kind, count, wasted, p50, p95, p99, peak, total, hidden)
            in ledger.rows()]
    return columns, rows


@system_view("sys_sessions")
def _sys_sessions(engine):
    """Live server-side sessions — the volatile state the paper's
    persistent-session machinery exists to reconstruct (temp tables,
    in-flight transaction, session settings, temp-table plans)."""
    columns = [Column("session_id", SqlType.INTEGER),
               Column("temp_tables", SqlType.INTEGER),
               Column("in_transaction", SqlType.INTEGER),
               Column("txn_id", SqlType.INTEGER),
               Column("settings", SqlType.INTEGER),
               Column("temp_plan_entries", SqlType.INTEGER),
               Column("temp_plan_evictions", SqlType.INTEGER)]
    rows = []
    for token in sorted(engine.sessions):
        session = engine.sessions[token]
        txn = session.current_txn
        rows.append((session.session_id, len(session.temp_tables),
                     1 if session.in_transaction else 0,
                     txn.txn_id if session.in_transaction else 0,
                     len(session.settings), len(session.plan_cache),
                     session.plan_cache.evictions))
    return columns, rows


@system_view("sys_checkpoint")
def _sys_checkpoint(engine):
    """Fuzzy-checkpoint / log-truncation observability.

    Counters (``checkpoints_taken``, ``pages_flushed_background``,
    ``log_records_truncated``) accumulate in the world counters; the
    remaining rows are instantaneous state read straight off the buffer
    pool and the WAL, so a query always sees the live dirty-page table
    even between checkpoints.
    """
    columns = [Column("metric", SqlType.VARCHAR, 48),
               Column("value", SqlType.FLOAT)]
    counters = engine.meter.counters
    rows = [(name, float(counters.get(name, 0)))
            for name in ("checkpoints_taken", "pages_flushed_background",
                         "log_records_truncated")]
    dirty = engine.buffer_pool.dirty_page_table()
    rows.append(("dirty_pages", float(len(dirty))))
    rows.append(("min_reclsn", float(min(dirty.values(), default=0))))
    checkpoint = engine.wal.last_complete_checkpoint()
    rows.append(("last_checkpoint_lsn",
                 float(checkpoint.lsn if checkpoint is not None else 0)))
    rows.append(("truncated_lsn", float(engine.wal.truncated_lsn)))
    rows.append(("flushed_lsn", float(engine.wal.flushed_lsn)))
    rows.append(("last_lsn", float(engine.wal.last_lsn)))
    return columns, rows


@system_view("sys_plan_cache")
def _sys_plan_cache(engine):
    columns = [Column("metric", SqlType.VARCHAR, 48),
               Column("value", SqlType.BIGINT)]
    stats = engine.cache_stats
    rows = [(name, int(stats[name])) for name in sorted(stats)]
    rows += [("plan_entries", len(engine._plan_cache)),
             ("plan_evictions", engine._plan_cache.evictions),
             ("stmt_entries", len(engine._stmt_cache)),
             ("stmt_evictions", engine._stmt_cache.evictions),
             ("norm_entries", len(engine._norm_cache)),
             ("norm_evictions", engine._norm_cache.evictions),
             ("script_entries", len(engine._script_cache)),
             ("script_evictions", engine._script_cache.evictions)]
    session_entries = 0
    session_evictions = 0
    for token in sorted(engine.sessions):
        cache = engine.sessions[token].plan_cache
        session_entries += len(cache)
        session_evictions += cache.evictions
        if len(cache) or cache.evictions:
            rows.append((f"session_{token}_temp_plans", len(cache)))
            rows.append((f"session_{token}_temp_plan_evictions",
                         cache.evictions))
    rows += [("session_plan_entries", session_entries),
             ("session_plan_evictions", session_evictions)]
    return columns, rows

"""The bench regression sentinel: read the history, gate the build.

Every bench leg appends one JSON line per run to a
``bench_results/*_history.jsonl`` file (``wallclock_history.jsonl``,
``recovery_scaling_history.jsonl``, ...).  The sentinel is the consumer
those files never had: for each history file it groups entries by their
identity fields (``leg``, ``records``, ... — everything that is not a
date, commit or tracked metric), compares the latest entry of each
group against the *median of its trailing window*, and fails when a
tracked metric grew beyond its per-metric tolerance:

* deterministic integer counters (``log_forces``, ``requests_sent``,
  ``fetch_requests``, ``redo_applied``, ``result_cache_hits``) must not
  grow at all — any increase means simulated behaviour changed (a *drop*
  in shared-cache hits surfaces as ``requests_sent`` growth, which is
  equally zero-tolerance);
* virtual-clock metrics (``virtual_seconds``, ``recovery_seconds``,
  ``p95_execute_seconds``) get a hair of float slack — they are
  deterministic, so anything visible is a real drift;
* ``host_seconds`` is wall-clock on whatever machine happens to run the
  bench, so it is *advisory*: a >50% regression over the window median
  prints a WARNING but never fails the build (matching the wallclock
  runner's own policy for host-time noise).

Metrics absent from older lines are skipped (history formats grow),
decreases never fail, and a group needs at least one prior entry to be
judged.  ``python -m repro.bench sentinel`` is the CLI; CI runs it
after the bench legs.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

__all__ = ["ADVISORY_METRICS", "METRIC_TOLERANCES", "SentinelReport",
           "run_sentinel", "check_history_file"]

#: metric name -> allowed relative increase of latest over the trailing
#: window median.  0.0 means "must not grow at all".
METRIC_TOLERANCES: dict[str, float] = {
    "log_forces": 0.0,
    "requests_sent": 0.0,
    "fetch_requests": 0.0,
    "redo_applied": 0.0,
    "result_cache_hits": 0.0,
    # Cost-based-optimizer counters: heuristic legs must stay at zero
    # (any growth means cost-mode machinery leaked into the default
    # path); cost legs are judged against their own group's history.
    "optimizer.plans_costed": 0.0,
    "optimizer.join_orders_considered": 0.0,
    "optimizer.topn_heap_used": 0.0,
    "optimizer.sortmerge_chosen": 0.0,
    "optimizer.stats_missing_fallbacks": 0.0,
    # Lock-manager counters: table-granularity legs must stay at zero
    # (growth means row-locking machinery leaked into the default path);
    # row legs are judged against their own group's history.
    "locks.row_locks_acquired": 0.0,
    "locks.escalations": 0.0,
    "locks.deadlocks_detected": 0.0,
    "locks.lock_wait_seconds": 1e-9,
    "locks.txn_retries": 0.0,
    "virtual_seconds": 1e-9,
    "recovery_seconds": 1e-6,
    "p95_execute_seconds": 1e-9,
    "host_seconds": 0.5,
}

#: Metrics whose regressions warn instead of failing: anything measured
#: in host wall time depends on the machine running the bench.
ADVISORY_METRICS = frozenset({"host_seconds"})

#: Entry fields that never identify a group (provenance, not identity).
_PROVENANCE_FIELDS = ("date", "commit")

#: How many trailing entries (before the latest) feed the median.
DEFAULT_WINDOW = 5

#: Absolute slack on the comparison so a float median (interpolated
#: between two integers) never fails an equal integer latest.
_ABS_EPS = 1e-12


@dataclass
class Finding:
    """One metric of one group that regressed beyond tolerance."""

    file: str
    group: str
    metric: str
    latest: float
    median: float
    limit: float

    def format(self) -> str:
        return (f"{self.file} [{self.group}] {self.metric}: latest "
                f"{self.latest:g} exceeds {self.limit:g} (median "
                f"{self.median:g} over the trailing window, tolerance "
                f"{METRIC_TOLERANCES[self.metric]:g})")


@dataclass
class SentinelReport:
    findings: list[Finding] = field(default_factory=list)
    #: Regressions on :data:`ADVISORY_METRICS` — reported, never fatal.
    advisories: list[Finding] = field(default_factory=list)
    #: (file, group, metric, latest, median) tuples that were checked.
    checked: list[tuple] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def format(self) -> str:
        lines = [f"sentinel: {len(self.checked)} metric comparisons "
                 f"across {len({c[0] for c in self.checked})} history "
                 f"files"]
        lines.extend(f"  skipped: {reason}" for reason in self.skipped)
        for finding in self.advisories:
            lines.append(f"WARNING: {finding.format()} (advisory — host "
                         f"time is machine-dependent)")
        for finding in self.findings:
            lines.append(f"REGRESSION: {finding.format()}")
        if self.ok:
            lines.append("sentinel: no regressions beyond tolerance")
        return "\n".join(lines)


def _median(values: list[float]) -> float:
    from repro.obs.metrics import percentile

    return percentile(sorted(values), 0.5)


def _group_key(entry: dict) -> str:
    parts = [f"{key}={entry[key]}" for key in sorted(entry)
             if key not in _PROVENANCE_FIELDS
             and key not in METRIC_TOLERANCES]
    return " ".join(parts) or "(default)"


def check_history_file(path, window: int = DEFAULT_WINDOW,
                       report: SentinelReport | None = None
                       ) -> SentinelReport:
    """Judge one history file's latest entry per group."""
    report = report if report is not None else SentinelReport()
    path = pathlib.Path(path)
    entries = []
    for line_no, line in enumerate(path.read_text().splitlines(),
                                   start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            report.skipped.append(f"{path.name}:{line_no}: not valid "
                                  f"JSON")
            continue
        if isinstance(entry, dict):
            entries.append(entry)
    groups: dict[str, list[dict]] = {}
    for entry in entries:
        groups.setdefault(_group_key(entry), []).append(entry)
    for group, history in sorted(groups.items()):
        if len(history) < 2:
            report.skipped.append(
                f"{path.name} [{group}]: only {len(history)} entry — "
                f"nothing to compare against")
            continue
        latest = history[-1]
        trailing = history[max(0, len(history) - 1 - window):-1]
        for metric, tolerance in METRIC_TOLERANCES.items():
            latest_value = latest.get(metric)
            if not isinstance(latest_value, (int, float)):
                continue
            window_values = [entry[metric] for entry in trailing
                             if isinstance(entry.get(metric),
                                           (int, float))]
            if not window_values:
                continue
            median = _median([float(value) for value in window_values])
            limit = median * (1.0 + tolerance)
            report.checked.append((path.name, group, metric,
                                   float(latest_value), median))
            if float(latest_value) > limit + _ABS_EPS:
                finding = Finding(
                    file=path.name, group=group, metric=metric,
                    latest=float(latest_value), median=median,
                    limit=limit)
                if metric in ADVISORY_METRICS:
                    report.advisories.append(finding)
                else:
                    report.findings.append(finding)
    return report


def run_sentinel(results_dir="bench_results",
                 window: int = DEFAULT_WINDOW) -> SentinelReport:
    """Check every ``*_history.jsonl`` under ``results_dir``."""
    report = SentinelReport()
    directory = pathlib.Path(results_dir)
    if not directory.is_dir():
        report.skipped.append(f"{directory}: no such directory")
        return report
    histories = sorted(directory.glob("*_history.jsonl"))
    if not histories:
        report.skipped.append(f"{directory}: no *_history.jsonl files")
    for path in histories:
        check_history_file(path, window=window, report=report)
    return report

"""Trace schema checker: is an exported JSONL trace well-formed?

Checks, per record type:

* ``meta`` — present first, integer counts;
* ``span`` — required fields with the right types, ``end >= start``,
  unique ids, no ``open`` status, parents exist (unless the exporting
  ring dropped spans) and strictly-nested spans lie inside their
  parent's interval (``stream`` spans are exempt: they bracket lazy work
  whose lifetime legitimately overlaps siblings);
* ``metric`` — known kind, numeric value;
* ``latency`` — request kind, integer count, numeric percentiles, and a
  numeric per-component attribution map (schema version 2).

An unknown declared schema version is a *warning*, not an error — newer
files stay checkable for the record types this validator knows.

Also usable on live :class:`~repro.obs.trace.Span` objects
(:func:`validate_spans`) — the crash-fuzz test asserts every fuzzed
crash still yields a complete, well-nested span tree.

CLI::

    python -m repro.obs.validate trace.jsonl
"""

from __future__ import annotations

import sys

_SPAN_FIELDS = {
    "span_id": int,
    "parent_id": int,
    "name": str,
    "layer": str,
    "kind": str,
    "status": str,
    "start": (int, float),
    "end": (int, float),
    "attrs": dict,
}
_SPAN_KINDS = ("span", "stream")
_METRIC_KINDS = ("counter", "gauge", "histogram")
#: Interval-containment slack: timestamps are exact floats from one
#: clock, so equality at the edges is legal but drift is not.
_EPS = 1e-9


def validate_records(records: list[dict],
                     warnings: list[str] | None = None) -> list[str]:
    """Return every schema violation found (empty list == valid).

    Non-fatal findings (an unknown declared schema version) are
    appended to ``warnings`` when a list is passed.
    """
    from repro.obs.export import (KNOWN_SCHEMA_VERSIONS,
                                  declared_schema_version)

    errors: list[str] = []
    spans: dict[int, dict] = {}
    dropped = 0
    declared = declared_schema_version(records)
    if warnings is not None and declared is not None \
            and declared not in KNOWN_SCHEMA_VERSIONS:
        warnings.append(
            f"meta declares schema version {declared}; this validator "
            f"knows {KNOWN_SCHEMA_VERSIONS} — unknown record types or "
            f"fields are not checked")
    for i, record in enumerate(records, start=1):
        where = f"record {i}"
        if not isinstance(record, dict):
            errors.append(f"{where}: not an object")
            continue
        rtype = record.get("type")
        if rtype == "meta":
            if i != 1:
                errors.append(f"{where}: meta record must come first")
            for field in ("version", "spans", "dropped", "open_spans"):
                if not isinstance(record.get(field), int):
                    errors.append(
                        f"{where}: meta.{field} must be an integer")
            dropped = record.get("dropped", 0) \
                if isinstance(record.get("dropped"), int) else 0
        elif rtype == "span":
            errors.extend(_check_span_fields(record, where))
            span_id = record.get("span_id")
            if isinstance(span_id, int):
                if span_id in spans:
                    errors.append(f"{where}: duplicate span_id {span_id}")
                else:
                    spans[span_id] = record
        elif rtype == "metric":
            if record.get("kind") not in _METRIC_KINDS:
                errors.append(
                    f"{where}: metric kind {record.get('kind')!r} not in "
                    f"{_METRIC_KINDS}")
            if not isinstance(record.get("name"), str):
                errors.append(f"{where}: metric.name must be a string")
            if not isinstance(record.get("value"), (int, float)):
                errors.append(f"{where}: metric.value must be numeric")
        elif rtype == "latency":
            errors.extend(_check_latency_fields(record, where))
        else:
            errors.append(f"{where}: unknown record type {rtype!r}")
    errors.extend(_check_tree(spans, dropped))
    return errors


def _check_latency_fields(record: dict, where: str) -> list[str]:
    errors = []
    if not isinstance(record.get("kind"), str):
        errors.append(f"{where}: latency.kind must be a string")
    for field in ("count", "wasted"):
        if not isinstance(record.get(field), int):
            errors.append(f"{where}: latency.{field} must be an integer")
    for field in ("p50", "p95", "p99", "max", "total", "hidden"):
        if not isinstance(record.get(field), (int, float)):
            errors.append(f"{where}: latency.{field} must be numeric")
    components = record.get("components")
    if not isinstance(components, dict):
        errors.append(f"{where}: latency.components must be an object")
    else:
        for name, value in components.items():
            if not isinstance(value, (int, float)):
                errors.append(f"{where}: latency component {name!r} "
                              f"must be numeric")
    return errors


def _check_span_fields(record: dict, where: str) -> list[str]:
    errors = []
    for field, types in _SPAN_FIELDS.items():
        if field not in record:
            errors.append(f"{where}: span missing field {field!r}")
        elif not isinstance(record[field], types):
            errors.append(
                f"{where}: span field {field!r} has type "
                f"{type(record[field]).__name__}")
    if record.get("kind") not in _SPAN_KINDS:
        errors.append(f"{where}: span kind {record.get('kind')!r} not in "
                      f"{_SPAN_KINDS}")
    if record.get("status") == "open":
        errors.append(
            f"{where}: span {record.get('span_id')} was never closed")
    start, end = record.get("start"), record.get("end")
    if isinstance(start, (int, float)) and isinstance(end, (int, float)) \
            and end < start:
        errors.append(
            f"{where}: span {record.get('span_id')} ends before it "
            f"starts ({end} < {start})")
    return errors


def _check_tree(spans: dict[int, dict], dropped: int) -> list[str]:
    """Parent existence and nesting containment over the span forest."""
    errors = []
    for span in spans.values():
        parent_id = span.get("parent_id")
        span_id = span.get("span_id")
        if not isinstance(parent_id, int) or parent_id == 0:
            continue
        parent = spans.get(parent_id)
        if parent is None:
            if not dropped:
                errors.append(
                    f"span {span_id}: orphan — parent {parent_id} "
                    f"does not exist")
            continue
        if parent.get("kind") == "stream":
            errors.append(
                f"span {span_id}: parent {parent_id} is a stream span "
                f"(streams cannot have children)")
        if span.get("kind") != "span":
            continue  # stream spans legitimately overlap siblings
        try:
            inside = (span["start"] >= parent["start"] - _EPS
                      and span["end"] <= parent["end"] + _EPS)
        except (KeyError, TypeError):
            continue  # field errors already reported
        if not inside:
            errors.append(
                f"span {span_id} [{span['start']}, {span['end']}] not "
                f"nested inside parent {parent_id} "
                f"[{parent['start']}, {parent['end']}]")
    return errors


def validate_spans(spans) -> list[str]:
    """Validate live Span objects (no meta line, no drop slack)."""
    return validate_records([span.to_dict() for span in spans])


def validate_file(path, warnings: list[str] | None = None) -> list[str]:
    import warnings as warnings_module

    from repro.obs.export import load_records

    try:
        with warnings_module.catch_warnings():
            # The version warning surfaces through the ``warnings``
            # out-list (and the CLI), not the global warning machinery.
            warnings_module.simplefilter("ignore")
            records = load_records(path)
    except (OSError, ValueError) as error:
        return [str(error)]
    if not records:
        return [f"{path}: empty trace file"]
    return validate_records(records, warnings=warnings)


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate <trace.jsonl>",
              file=sys.stderr)
        return 2
    warnings: list[str] = []
    errors = validate_file(argv[0], warnings=warnings)
    for warning in warnings:
        print(f"WARNING: {warning}", file=sys.stderr)
    if errors:
        for error in errors:
            print(f"INVALID: {error}", file=sys.stderr)
        return 1
    print(f"{argv[0]}: trace is valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Render a per-layer latency summary from an exported JSONL trace.

``python -m repro.bench trace-report --input trace.jsonl`` loads the
span records, groups them by layer, and prints per-layer statistics
(count, total/mean/p50/p95/max virtual seconds) followed by a
fixed-bucket duration histogram per layer — the offline counterpart of
the live ``sys_traces``/``sys_metrics`` views.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.reporting import format_table
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, percentile

_BAR_WIDTH = 36


@dataclass
class LayerSummary:
    layer: str
    count: int
    total: float
    mean: float
    p50: float
    p95: float
    p99: float
    max: float
    histogram: Histogram


@dataclass
class TraceReport:
    """Per-layer breakdown of one exported trace."""

    source: str
    span_count: int = 0
    dropped: int = 0
    #: Spans whose timestamps were unusable (cut short, hand-edited);
    #: excluded from the statistics instead of polluting the p50 as
    #: zero-duration samples.
    malformed_spans: int = 0
    layers: list[LayerSummary] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)

    def format(self) -> str:
        head = format_table(
            f"Trace report: {self.source} ({self.span_count} spans, "
            f"virtual seconds)",
            ["Layer", "Spans", "Total", "Mean", "P50", "P95", "P99",
             "Max"],
            [[s.layer, s.count, s.total, s.mean, s.p50, s.p95, s.p99,
              s.max]
             for s in self.layers])
        blocks = [head]
        if self.dropped:
            blocks.append(f"(ring buffer dropped {self.dropped} older "
                          f"spans)")
        if self.malformed_spans:
            blocks.append(f"(skipped {self.malformed_spans} malformed "
                          f"spans with unusable timestamps — excluded "
                          f"from the statistics above)")
        for summary in self.layers:
            blocks.append(_format_histogram(summary))
        if self.counters:
            names = sorted(self.counters)
            blocks.append(format_table(
                "Counters", ["Name", "Value"],
                [[name, self.counters[name]] for name in names]))
        return "\n\n".join(blocks)


def _format_histogram(summary: LayerSummary) -> str:
    histogram = summary.histogram
    peak = max(histogram.bucket_counts) or 1
    lines = [f"Layer {summary.layer!r} span durations:"]
    for label, count in histogram.bucket_rows():
        if not count:
            continue
        bar = "#" * max(1, round(_BAR_WIDTH * count / peak))
        lines.append(f"  <= {label:>7}s  {bar} {count}")
    if len(lines) == 1:
        lines.append("  (no spans)")
    return "\n".join(lines)


def _span_duration(record: dict) -> float | None:
    """Duration of one span record, ``None`` when timestamps are
    unusable.

    Exported traces may contain spans that were cut short (no ``end``),
    emitted outside any parent phase (no ``start`` inherited), or
    hand-edited; the report counts them as malformed instead of either
    crashing the run or silently folding zeros into the percentiles.
    """
    try:
        return float(record["end"]) - float(record["start"])
    except (KeyError, TypeError, ValueError):
        return None


def summarize_spans(span_records: list[dict], source: str = "live",
                    dropped: int = 0,
                    counters: dict | None = None) -> TraceReport:
    """Build a :class:`TraceReport` from span record dicts."""
    by_layer: dict[str, list[float]] = {}
    malformed = 0
    for record in span_records:
        duration = _span_duration(record)
        if duration is None:
            malformed += 1
            continue
        layer = record.get("layer") or "(none)"
        by_layer.setdefault(str(layer), []).append(duration)
    report = TraceReport(source=source, span_count=len(span_records),
                         dropped=dropped, malformed_spans=malformed,
                         counters=dict(counters or {}))
    for layer in sorted(by_layer):
        durations = sorted(by_layer[layer])
        histogram = Histogram(layer, DEFAULT_BUCKETS)
        for duration in durations:
            histogram.observe(duration)
        report.layers.append(LayerSummary(
            layer=layer, count=len(durations), total=sum(durations),
            mean=sum(durations) / len(durations),
            p50=percentile(durations, 0.50),
            p95=percentile(durations, 0.95),
            p99=percentile(durations, 0.99),
            max=durations[-1], histogram=histogram))
    report.layers.sort(key=lambda s: s.total, reverse=True)
    return report


def build_trace_report(path) -> TraceReport:
    """Load an exported JSONL trace and summarize it per layer."""
    from repro.obs.export import load_records

    records = load_records(path)
    spans = [r for r in records if r.get("type") == "span"]
    meta = next((r for r in records if r.get("type") == "meta"), {})
    counters = {r["name"]: r["value"] for r in records
                if r.get("type") == "metric"
                and r.get("kind") == "counter"
                and "name" in r and "value" in r}
    return summarize_spans(spans, source=str(path),
                           dropped=meta.get("dropped", 0),
                           counters=counters)

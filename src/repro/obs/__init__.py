"""Observability: tracing + metrics threaded through every layer.

The paper's contribution is *measuring* a persistent-session system;
this package is the measurement substrate the reproduction exposes.
One :class:`Observability` instance rides on each
:class:`~repro.sim.meter.Meter` (one per simulated world) and bundles:

* a :class:`~repro.obs.trace.Tracer` — parent/child spans stamped from
  the virtual clock (disabled unless ``REPRO_TRACE=1`` or explicitly
  enabled; zero virtual cost either way);
* a :class:`~repro.obs.metrics.MetricsRegistry` — counters (including
  every legacy ``Meter.count`` counter), gauges and fixed-bucket
  histograms;
* the recovery log — per-phase virtual-time breakdowns of every Phoenix
  session recovery, feeding the ``sys_recovery_phases`` view and the
  Fig. 3/4 phase-breakdown artifacts.

Siblings: :mod:`repro.obs.views` (``sys_*`` queryable views),
:mod:`repro.obs.export` (JSONL trace exporter),
:mod:`repro.obs.validate` (trace schema checker, also a CLI), and
:mod:`repro.obs.report` (the ``trace-report`` rendering).
"""

from __future__ import annotations

import os
from collections import deque

from repro.obs.latency import LatencyLedger, latency_enabled_from_env
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.trace import NOOP_SPAN, Span, Tracer

__all__ = ["Observability", "Tracer", "Span", "MetricsRegistry",
           "Histogram", "DEFAULT_BUCKETS", "NOOP_SPAN", "LatencyLedger",
           "RECOVERY_PHASES", "trace_enabled_from_env",
           "latency_enabled_from_env"]

#: Canonical order of the Phoenix recovery phases (§2.3, Figures 3/4).
RECOVERY_PHASES: tuple[str, ...] = (
    "failure_detection", "reconnect", "option_replay", "status_probe",
    "reposition")


def trace_enabled_from_env() -> bool:
    """``REPRO_TRACE=1`` (or any non-empty, non-zero value) turns
    tracing on for every world built in the process."""
    return os.environ.get("REPRO_TRACE", "").strip() not in ("", "0")


class Observability:
    """Tracer + metrics + recovery log for one simulated world."""

    def __init__(self, now_fn, enabled: bool | None = None,
                 max_spans: int = 20000):
        if enabled is None:
            enabled = trace_enabled_from_env()
        self.tracer = Tracer(now_fn, enabled=enabled, max_spans=max_spans)
        self.metrics = MetricsRegistry()
        #: Per-request latency attribution (see :mod:`repro.obs.latency`).
        #: On whenever tracing is on, or standalone via ``REPRO_LATENCY=1``
        #: / :meth:`~repro.sim.meter.Meter.enable_latency_ledger`; it never
        #: charges or flushes, so enabling it cannot move the clock.
        self.latency = LatencyLedger(
            enabled=enabled or latency_enabled_from_env())
        #: Most recent session recoveries, oldest first: dicts with
        #: ``recovery_id``, ``finished_at`` and ordered ``phases``.
        self.recovery_log: deque[dict] = deque(maxlen=64)
        self._recovery_seq = 0

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    def record_recovery(self, phase_seconds: dict[str, float],
                        finished_at: float) -> dict:
        """Log one completed session recovery's phase breakdown.

        Always recorded (recoveries are rare; the log is how
        ``sys_recovery_phases`` answers even with tracing off).
        """
        self._recovery_seq += 1
        ordered = [(phase, phase_seconds[phase])
                   for phase in RECOVERY_PHASES if phase in phase_seconds]
        ordered += sorted((name, seconds)
                          for name, seconds in phase_seconds.items()
                          if name not in RECOVERY_PHASES)
        record = {"recovery_id": self._recovery_seq,
                  "finished_at": finished_at, "phases": ordered}
        self.recovery_log.append(record)
        return record

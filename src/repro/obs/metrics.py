"""Counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` lives on each :class:`~repro.sim.meter.Meter`
(one per simulated world).  The meter's ad-hoc diagnostic counters are
the registry's counters — ``Meter.count`` delegates here, so every
counter that used to live in ``meter.counters`` now shares one namespace
with the gauges and histograms the observability layer adds, and all of
them surface through the ``sys_metrics`` view and the JSONL exporter.

Histograms use fixed bucket boundaries (seconds by default, spanning
0.1 ms to 30 s in a 1-3-10 ladder) so two runs of the same workload
produce comparable shapes without any adaptive state.
"""

from __future__ import annotations

#: Default histogram ladder (seconds): 1-3-10 steps from 0.1 ms to 30 s.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0,
    30.0)


def percentile(sorted_values, q: float) -> float:
    """Deterministic linear-interpolation percentile (inclusive method).

    ``sorted_values`` must be sorted ascending.  This is numpy's default
    ``linear`` method: rank ``q * (n - 1)`` with interpolation between
    the straddling samples — unlike nearest-rank-by-``round()``, p95 of
    a small sample no longer collapses to the max.  Shared by the trace
    report and the request latency ledger so both quote the same
    definition.
    """
    if not sorted_values:
        return 0.0
    if q <= 0.0:
        return float(sorted_values[0])
    if q >= 1.0:
        return float(sorted_values[-1])
    position = q * (len(sorted_values) - 1)
    lower_index = int(position)
    fraction = position - lower_index
    lower = float(sorted_values[lower_index])
    if fraction == 0.0:
        return lower
    return lower + (float(sorted_values[lower_index + 1]) - lower) * fraction


class Histogram:
    """Fixed-bucket histogram of observed values."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str,
                 bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        self.name = name
        self.bounds = bounds
        #: counts[i] counts values <= bounds[i]; the final slot is +Inf.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_rows(self) -> list[tuple[str, int]]:
        """(upper-bound label, count) pairs, +Inf last."""
        rows = [(_bound_label(b), n)
                for b, n in zip(self.bounds, self.bucket_counts)]
        rows.append(("+Inf", self.bucket_counts[-1]))
        return rows


def _bound_label(bound: float) -> str:
    return f"{bound:g}"


class MetricsRegistry:
    """Named counters, gauges and histograms for one world."""

    def __init__(self):
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- writing ------------------------------------------------------------

    def count(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def gauge_set(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float,
                bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = Histogram(name, bounds)
            self.histograms[name] = histogram
        histogram.observe(value)

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    # -- reading ------------------------------------------------------------

    def rows(self) -> list[tuple[str, str, str, float]]:
        """Flat (kind, name, bucket, value) rows for views/exports.

        Counters and gauges use an empty bucket label; each histogram
        contributes one row per bucket plus ``count``/``sum`` rollups.
        """
        out: list[tuple[str, str, str, float]] = []
        for name in sorted(self.counters):
            out.append(("counter", name, "", float(self.counters[name])))
        for name in sorted(self.gauges):
            out.append(("gauge", name, "", float(self.gauges[name])))
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            out.append(("histogram", name, "count",
                        float(histogram.count)))
            out.append(("histogram", name, "sum", histogram.total))
            for label, bucket_count in histogram.bucket_rows():
                out.append(("histogram", name, f"le:{label}",
                            float(bucket_count)))
        return out

"""JSONL trace exporter.

One record per line:

* first a ``meta`` record — schema version, span counts, how many
  finished spans the ring buffer dropped (validators relax the
  parent-must-exist check when spans were dropped);
* one ``span`` record per finished span (schema in
  :mod:`repro.obs.validate`);
* one ``metric`` record per counter/gauge/histogram-bucket row.

The file is the interchange format between a traced run and the offline
tools: ``python -m repro.obs.validate trace.jsonl`` checks it, and
``python -m repro.bench trace-report --input trace.jsonl`` renders the
per-layer latency summary.
"""

from __future__ import annotations

import json
import pathlib

SCHEMA_VERSION = 1


def trace_records(obs) -> list[dict]:
    """Every exportable record of one world, meta line first."""
    tracer = obs.tracer
    records: list[dict] = [{
        "type": "meta", "version": SCHEMA_VERSION,
        "spans": len(tracer.finished), "dropped": tracer.dropped,
        "open_spans": tracer.open_span_count,
    }]
    records.extend(span.to_dict() for span in tracer.finished)
    records.extend({"type": "metric", "kind": kind, "name": name,
                    "bucket": bucket, "value": value}
                   for kind, name, bucket, value in obs.metrics.rows())
    return records


def export_trace(obs, path) -> int:
    """Write one world's trace + metrics as JSONL; returns #records."""
    records = trace_records(obs)
    text = "\n".join(json.dumps(r, sort_keys=True) for r in records)
    pathlib.Path(path).write_text(text + "\n")
    return len(records)


def load_records(path) -> list[dict]:
    """Parse a JSONL trace file back into record dicts."""
    records = []
    for line_no, line in enumerate(
            pathlib.Path(path).read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path}:{line_no}: not valid JSON: {error}") from error
    return records

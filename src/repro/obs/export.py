"""JSONL trace exporter.

One record per line:

* first a ``meta`` record — schema version, span counts, how many
  finished spans the ring buffer dropped (validators relax the
  parent-must-exist check when spans were dropped);
* one ``span`` record per finished span (schema in
  :mod:`repro.obs.validate`);
* one ``metric`` record per counter/gauge/histogram-bucket row;
* one ``latency`` record per request kind the latency ledger saw
  (schema version 2; absent when the ledger is disabled or idle).

The file is the interchange format between a traced run and the offline
tools: ``python -m repro.obs.validate trace.jsonl`` checks it, and
``python -m repro.bench trace-report --input trace.jsonl`` renders the
per-layer latency summary.

The ``meta`` record carries ``schema_version`` (and the legacy
``version`` alias) so record types can evolve safely: readers warn on
versions they do not know instead of misparsing them silently.
"""

from __future__ import annotations

import json
import pathlib
import warnings

#: Bumped to 2 when ``latency`` records and ``schema_version`` stamping
#: were added; version-1 files (no latency records) remain readable.
SCHEMA_VERSION = 2

#: Every version this reader/validator understands.
KNOWN_SCHEMA_VERSIONS = (1, 2)


def trace_records(obs) -> list[dict]:
    """Every exportable record of one world, meta line first."""
    tracer = obs.tracer
    records: list[dict] = [{
        "type": "meta", "version": SCHEMA_VERSION,
        "schema_version": SCHEMA_VERSION,
        "spans": len(tracer.finished), "dropped": tracer.dropped,
        "open_spans": tracer.open_span_count,
    }]
    records.extend(span.to_dict() for span in tracer.finished)
    records.extend({"type": "metric", "kind": kind, "name": name,
                    "bucket": bucket, "value": value}
                   for kind, name, bucket, value in obs.metrics.rows())
    latency = getattr(obs, "latency", None)
    if latency is not None:
        records.extend(latency.export_records())
    return records


def export_trace(obs, path) -> int:
    """Write one world's trace + metrics as JSONL; returns #records."""
    records = trace_records(obs)
    text = "\n".join(json.dumps(r, sort_keys=True) for r in records)
    pathlib.Path(path).write_text(text + "\n")
    return len(records)


def declared_schema_version(records: list[dict]):
    """The meta record's schema version, or None when undeclared.

    ``schema_version`` wins; version-1 files only carried ``version``.
    """
    meta = records[0] if records else None
    if not isinstance(meta, dict) or meta.get("type") != "meta":
        return None
    declared = meta.get("schema_version", meta.get("version"))
    return declared if isinstance(declared, int) else None


def load_records(path) -> list[dict]:
    """Parse a JSONL trace file back into record dicts.

    Emits a :class:`UserWarning` when the file declares a schema version
    this reader does not know — the records still load, but unknown
    record types or fields may be silently skipped downstream.
    """
    records = []
    for line_no, line in enumerate(
            pathlib.Path(path).read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path}:{line_no}: not valid JSON: {error}") from error
    declared = declared_schema_version(records)
    if declared is not None and declared not in KNOWN_SCHEMA_VERSIONS:
        warnings.warn(
            f"{path}: declares schema version {declared}, but this "
            f"reader knows {KNOWN_SCHEMA_VERSIONS} — records may be "
            f"skipped or misread", UserWarning, stacklevel=2)
    return records

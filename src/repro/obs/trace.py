"""Span-based tracing over the virtual clock.

A :class:`Tracer` records *spans* — named, attributed intervals of
virtual time — organized as a tree: every span opened while another is
open becomes its child.  Span timestamps come from a ``now_fn`` supplied
by the owner (the :class:`~repro.sim.meter.Meter` passes a *pure* clock
read that never flushes pending charges), so tracing can never move the
virtual clock: with tracing on or off, every metered output is
bit-identical.

Two span kinds:

* ``span`` — strictly nested: opened and closed on a stack (the usual
  ``with tracer.span(...)`` bracket).  Children lie entirely within
  their parent's interval.
* ``stream`` — detached: brackets *lazy* work (a query plan producing
  rows on demand) whose lifetime interleaves with other spans.  A stream
  span records its parent at creation but is not pushed on the stack, so
  its interval may overlap later siblings; validators check only that it
  closed.

The tracer is disabled by default and, when disabled, does no work
beyond one attribute check — hot paths stay hot.  Enable it per-world
with :meth:`Tracer.enable` or globally with ``REPRO_TRACE=1``.
"""

from __future__ import annotations

from collections import deque


class Span:
    """One traced interval of virtual time."""

    __slots__ = ("span_id", "parent_id", "name", "layer", "kind",
                 "start", "end", "attrs", "status")

    def __init__(self, span_id: int, parent_id: int, name: str,
                 layer: str, kind: str, start: float,
                 attrs: dict | None = None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.layer = layer
        self.kind = kind
        self.start = start
        self.end = start
        self.attrs = attrs if attrs is not None else {}
        self.status = "open"

    @property
    def duration(self) -> float:
        return self.end - self.start

    def set_attr(self, name: str, value) -> None:
        self.attrs[name] = value

    def to_dict(self) -> dict:
        return {"type": "span", "span_id": self.span_id,
                "parent_id": self.parent_id, "name": self.name,
                "layer": self.layer, "kind": self.kind,
                "start": self.start, "end": self.end,
                "status": self.status, "attrs": self.attrs}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, layer={self.layer!r}, "
                f"{self.start:.6f}..{self.end:.6f}, {self.status})")


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def set_attr(self, name: str, value) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """Context manager bracketing one stack-nested span."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.end_span(
            self.span, status="error" if exc_type is not None else "ok")


class Tracer:
    """Collects spans into a bounded ring of finished spans."""

    def __init__(self, now_fn, enabled: bool = False,
                 max_spans: int = 20000):
        self._now = now_fn
        self.enabled = enabled
        #: Finished spans, oldest first; bounded so long-running worlds
        #: cannot grow without limit.
        self.finished: deque[Span] = deque(maxlen=max_spans)
        #: Finished spans evicted from the ring (exports report this so
        #: validators know parents may legitimately be missing).
        self.dropped = 0
        self._stack: list[Span] = []
        self._open_streams: set[int] = set()
        self._seq = 0

    # -- switches -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- span lifecycle -----------------------------------------------------

    def span(self, name: str, layer: str = "", **attrs):
        """Open a nested span; use as ``with tracer.span(...) as s:``."""
        if not self.enabled:
            return NOOP_SPAN
        span = self._new_span(name, layer, "span", attrs)
        self._stack.append(span)
        return _SpanContext(self, span)

    def end_span(self, span: Span, status: str = "ok") -> None:
        """Close a stack-nested span (innermost-first)."""
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # pragma: no cover - misuse guard
            try:
                self._stack.remove(span)
            except ValueError:
                pass
        self._finish(span, status)

    def start_stream(self, name: str, layer: str = "", **attrs) -> Span:
        """Open a detached span for lazy/streaming work.

        The parent is whatever span is innermost *now*; the stream span
        itself never becomes a parent and may outlive its siblings.
        Close it with :meth:`end_stream` (a ``finally`` in the producer).
        """
        span = self._new_span(name, layer, "stream", attrs)
        self._open_streams.add(span.span_id)
        return span

    def end_stream(self, span: Span, status: str = "ok") -> None:
        self._open_streams.discard(span.span_id)
        self._finish(span, status)

    # -- reading ------------------------------------------------------------

    @property
    def open_span_count(self) -> int:
        """Spans opened but not yet closed (stacked + streaming)."""
        return len(self._stack) + len(self._open_streams)

    def spans_by_layer(self) -> dict[str, list[Span]]:
        grouped: dict[str, list[Span]] = {}
        for span in self.finished:
            grouped.setdefault(span.layer, []).append(span)
        return grouped

    def reset(self) -> None:
        """Drop every recorded span (open spans keep tracking)."""
        self.finished.clear()
        self.dropped = 0

    # -- internals ----------------------------------------------------------

    def _new_span(self, name: str, layer: str, kind: str,
                  attrs: dict) -> Span:
        self._seq += 1
        parent_id = self._stack[-1].span_id if self._stack else 0
        return Span(self._seq, parent_id, name, layer, kind,
                    self._now(), attrs or None)

    def _finish(self, span: Span, status: str) -> None:
        span.end = self._now()
        span.status = status
        if len(self.finished) == self.finished.maxlen:
            self.dropped += 1
        self.finished.append(span)

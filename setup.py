"""Setup shim.

The environment's setuptools (65.x) cannot build editable wheels (no
``wheel`` package is installed offline), so ``pip install -e .`` falls
back to this legacy path, which works without wheel support.
"""

from setuptools import setup

setup()
